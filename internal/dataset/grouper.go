package dataset

import "math"

// Grouper is the reusable, allocation-free form of Table.GroupBy for hot
// paths that only need the equivalence-class *structure* — per-row class ids
// and per-class sizes — not group index lists in lexicographic key order.
// The discernibility metric recomputes the partition of every release at
// every sweep level; with GroupBy that is one rendered string key per row
// per level (the dominant allocation of a whole sweep), while a Grouper
// reuses its maps and buffers across calls and allocates nothing once warm.
//
// Classes assigns ids by refining the partition one column at a time: each
// row's class is chained with a dense code for its cell in the next column,
// and the (class, code) pair is renumbered densely in first-occurrence row
// order. Two rows land in the same class exactly when all their compared
// cells are equal under GroupBy's rendered-string equality: numeric cells
// compare by their float bits (NaNs canonicalized, so all NaNs are one cell
// value, matching their common "NaN" rendering), intervals by (lo, hi) bits
// plus the interval-ness flag, text cells by dictionary id, and nulls form
// their own cell value. The one divergence from string keys is text cells
// containing the \x1f key separator, which could alias across columns in
// GroupBy; the Grouper always keeps columns independent.
//
// Class ids run 0..len(sizes)-1 in order of first appearance. A Grouper is
// not safe for concurrent use; the returned slices are valid until the next
// Classes call.
type Grouper struct {
	ids   []int32
	sizes []int32
	chain map[uint64]int32 // (prev class << 32 | cell code) → refined class
	cells map[uint64]int32 // cell bit pattern → dense per-column code
}

// canonBits returns the comparison bits of f: Float64bits with every NaN
// collapsed to one canonical pattern, mirroring the fact that every NaN
// renders as the same "NaN" string key.
func canonBits(f float64) uint64 {
	if f != f {
		return 0x7FF8000000000001
	}
	return math.Float64bits(f)
}

// Classes partitions the table's rows by the given columns and returns the
// per-row class ids plus the per-class sizes. Both slices are owned by the
// Grouper and reused by the next call.
func (g *Grouper) Classes(t *Table, cols []int) (ids []int32, sizes []int32) {
	n := t.nrows
	if cap(g.ids) < n {
		g.ids = make([]int32, n)
	}
	g.ids = g.ids[:n]
	for i := range g.ids {
		g.ids[i] = 0
	}
	if g.chain == nil {
		g.chain = make(map[uint64]int32)
		g.cells = make(map[uint64]int32)
	}
	nClasses := 1
	if n == 0 {
		nClasses = 0
	}
	for _, ci := range cols {
		c := t.cols[ci]
		nClasses = g.refine(c, n)
		if c.kind == Number && c.spans != nil {
			nClasses = g.refineSpans(c, n)
		}
	}
	if cap(g.sizes) < nClasses {
		g.sizes = make([]int32, nClasses)
	}
	g.sizes = g.sizes[:nClasses]
	for i := range g.sizes {
		g.sizes[i] = 0
	}
	for _, id := range g.ids {
		g.sizes[id]++
	}
	return g.ids, g.sizes
}

// refine chains every row's class with the main word of its cell in column c:
// the scalar (or interval lower-bound) bits for numbers, the dictionary id
// for text, a dedicated code for nulls. Interval upper bounds are handled by
// a second refineSpans pass. Returns the refined class count.
func (g *Grouper) refine(c *colData, n int) int {
	clear(g.chain)
	clear(g.cells)
	var next, nextClass int32
	nullCode := int32(-1)
	for i := 0; i < n; i++ {
		var code int32
		switch {
		case c.nulls.get(i):
			if nullCode < 0 {
				nullCode = next
				next++
			}
			code = nullCode
		case c.kind == Text:
			// The dictionary id is already a dense per-string code — except
			// that a literal "*" text cell renders exactly like a null key,
			// which GroupBy therefore merges with suppressed cells.
			if c.dict.strs[c.ids[i]] == "*" {
				if nullCode < 0 {
					nullCode = next
					next++
				}
				code = nullCode
				break
			}
			w := uint64(uint32(c.ids[i]))
			cc, ok := g.cells[w]
			if !ok {
				cc = next
				next++
				g.cells[w] = cc
			}
			code = cc
		default:
			w := canonBits(c.num[i])
			cc, ok := g.cells[w]
			if !ok {
				cc = next
				next++
				g.cells[w] = cc
			}
			code = cc
		}
		key := uint64(uint32(g.ids[i]))<<32 | uint64(uint32(code))
		id, ok := g.chain[key]
		if !ok {
			id = nextClass
			nextClass++
			g.chain[key] = id
		}
		g.ids[i] = id
	}
	return int(nextClass)
}

// refineSpans chains interval cells with their upper-bound bits. Code 0 is
// reserved for every non-interval row (plain numbers, nulls), so a plain
// number a never merges with the degenerate interval [a-a] — they render as
// different keys. Null rows count as non-interval whatever their span bit
// says: a cell overwritten to Null keeps stale buffer bits that must not
// split the null class.
func (g *Grouper) refineSpans(c *colData, n int) int {
	clear(g.chain)
	clear(g.cells)
	next := int32(1)
	var nextClass int32
	for i := 0; i < n; i++ {
		var code int32
		if c.spans.get(i) && !c.nulls.get(i) {
			w := canonBits(c.hi[i])
			cc, ok := g.cells[w]
			if !ok {
				cc = next
				next++
				g.cells[w] = cc
			}
			code = cc
		}
		key := uint64(uint32(g.ids[i]))<<32 | uint64(uint32(code))
		id, ok := g.chain[key]
		if !ok {
			id = nextClass
			nextClass++
			g.chain[key] = id
		}
		g.ids[i] = id
	}
	return int(nextClass)
}
