package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind ValueKind
		str  string
	}{
		{"null", NullValue(), Null, "*"},
		{"zero value is null", Value{}, Null, "*"},
		{"number", Num(42), Number, "42"},
		{"negative number", Num(-3.5), Number, "-3.5"},
		{"text", Str("CEO, Deutsche Bank"), Text, "CEO, Deutsche Bank"},
		{"interval", Span(5, 10), Interval, "[5-10]"},
		{"degenerate interval", Span(7, 7), Interval, "[7-7]"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.v.Kind(); got != tc.kind {
				t.Errorf("Kind() = %v, want %v", got, tc.kind)
			}
			if got := tc.v.String(); got != tc.str {
				t.Errorf("String() = %q, want %q", got, tc.str)
			}
		})
	}
}

func TestSpanPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Span(10, 5) did not panic")
		}
	}()
	Span(10, 5)
}

func TestValueFloat(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		want float64
		ok   bool
	}{
		{"number", Num(3), 3, true},
		{"interval midpoint", Span(5, 10), 7.5, true},
		{"null", NullValue(), 0, false},
		{"text", Str("x"), 0, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := tc.v.Float()
			if ok != tc.ok || got != tc.want {
				t.Errorf("Float() = (%g, %v), want (%g, %v)", got, ok, tc.want, tc.ok)
			}
		})
	}
}

func TestMustFloatPanicsOnText(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFloat on text did not panic")
		}
	}()
	Str("x").MustFloat()
}

func TestValueBoundsAndWidth(t *testing.T) {
	if lo, hi, ok := Num(4).Bounds(); !ok || lo != 4 || hi != 4 {
		t.Errorf("Num bounds = (%g,%g,%v)", lo, hi, ok)
	}
	if lo, hi, ok := Span(1, 9).Bounds(); !ok || lo != 1 || hi != 9 {
		t.Errorf("Span bounds = (%g,%g,%v)", lo, hi, ok)
	}
	if _, _, ok := Str("a").Bounds(); ok {
		t.Error("text has bounds")
	}
	if w := Span(2, 5).Width(); w != 3 {
		t.Errorf("Width = %g, want 3", w)
	}
	if w := Num(2).Width(); w != 0 {
		t.Errorf("number Width = %g, want 0", w)
	}
}

func TestValueContains(t *testing.T) {
	v := Span(5, 10)
	for _, x := range []float64{5, 7.5, 10} {
		if !v.Contains(x) {
			t.Errorf("Span(5,10) should contain %g", x)
		}
	}
	for _, x := range []float64{4.999, 10.001} {
		if v.Contains(x) {
			t.Errorf("Span(5,10) should not contain %g", x)
		}
	}
	if NullValue().Contains(0) {
		t.Error("null contains nothing")
	}
	if Str("a").Contains(0) {
		t.Error("text contains nothing")
	}
	if !Num(3).Contains(3) {
		t.Error("number contains itself")
	}
}

func TestValueEqual(t *testing.T) {
	tests := []struct {
		a, b Value
		want bool
	}{
		{Num(1), Num(1), true},
		{Num(1), Num(2), false},
		{Num(math.NaN()), Num(math.NaN()), true},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Span(1, 2), Span(1, 2), true},
		{Span(1, 2), Span(1, 3), false},
		{NullValue(), NullValue(), true},
		{Num(1), Str("1"), false},
		{Num(1.5), Span(1, 2), false},
	}
	for _, tc := range tests {
		if got := tc.a.Equal(tc.b); got != tc.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{Num(1), Num(2), -1},
		{Num(2), Num(1), 1},
		{Num(1), Num(1), 0},
		{Str("a"), Str("b"), -1},
		{Span(0, 2), Span(0, 4), -1}, // same? midpoints 1 vs 2
		{Span(0, 4), Span(1, 3), 0},  // equal midpoint 2, widths 4 vs 2 → +? width 4 > 2 → 1
		{NullValue(), Num(0), -1},    // kind ordering: null < number
	}
	// fix expectations for the width tiebreak case
	tests[5].want = 1
	for _, tc := range tests {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	values := []Value{
		NullValue(),
		Num(0), Num(42), Num(-3.25), Num(98230),
		Str("Alice"), Str("CEO Microsoft"),
		Span(5, 10), Span(-3, -1), Span(0.5, 2.5), Span(40000, 160000),
	}
	for _, v := range values {
		got, err := ParseValue(v.String())
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", v.String(), err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %q → %v, want %v", v.String(), got, v)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	for _, s := range []string{"[10-5]", "[abc]", "[1-2-junk"} {
		v, err := ParseValue(s)
		if err == nil && v.Kind() != Text {
			t.Errorf("ParseValue(%q) = %v, want error or text fallback", s, v)
		}
	}
	// A malformed interval that cannot parse should error, not silently
	// become text, when it has the bracket shape.
	if _, err := ParseValue("[10-5]"); err == nil {
		t.Error("ParseValue([10-5]) should reject inverted bounds")
	}
	if _, err := ParseValue("[x-y]"); err == nil {
		t.Error("ParseValue([x-y]) should reject non-numeric bounds")
	}
}

func TestParseValueWhitespaceAndEmpty(t *testing.T) {
	if v, err := ParseValue("   "); err != nil || !v.IsNull() {
		t.Errorf("blank parses to null, got %v, %v", v, err)
	}
	if v, err := ParseValue(" 42 "); err != nil || !v.Equal(Num(42)) {
		t.Errorf("padded number, got %v, %v", v, err)
	}
	if v, err := ParseValue("[ 1 - 2 ]"); err != nil || !v.Equal(Span(1, 2)) {
		t.Errorf("padded interval, got %v, %v", v, err)
	}
}

func TestGeneralize(t *testing.T) {
	tests := []struct {
		name string
		a, b Value
		want Value
	}{
		{"numbers", Num(3), Num(7), Span(3, 7)},
		{"equal numbers stay number", Num(5), Num(5), Num(5)},
		{"number and interval", Num(1), Span(3, 5), Span(1, 5)},
		{"nested intervals", Span(2, 8), Span(3, 5), Span(2, 8)},
		{"overlapping intervals", Span(1, 4), Span(3, 9), Span(1, 9)},
		{"equal text", Str("a"), Str("a"), Str("a")},
		{"different text suppresses", Str("a"), Str("b"), NullValue()},
		{"null absorbs", NullValue(), Num(3), NullValue()},
		{"text with number suppresses", Str("a"), Num(1), NullValue()},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Generalize(tc.a, tc.b); !got.Equal(tc.want) {
				t.Errorf("Generalize(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

// Property: Generalize is commutative and its result contains both numeric
// arguments.
func TestGeneralizeProperties(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		g1 := Generalize(Num(a), Num(b))
		g2 := Generalize(Num(b), Num(a))
		return g1.Equal(g2) && g1.Contains(a) && g1.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: parse(render(v)) == v for finite numeric values.
func TestParseRenderNumericProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v, err := ParseValue(Num(x).String())
		return err == nil && v.Equal(Num(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric on numbers.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return Num(a).Compare(Num(b)) == -Num(b).Compare(Num(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
