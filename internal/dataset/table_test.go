package dataset

import (
	"strings"
	"testing"
)

// tableISchema reproduces the schema of the paper's Table I.
func tableISchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "Name", Class: Identifier, Kind: Text},
		Column{Name: "SSN", Class: Identifier, Kind: Text},
		Column{Name: "Zipcode", Class: QuasiIdentifier, Kind: Number},
		Column{Name: "Age", Class: QuasiIdentifier, Kind: Number},
		Column{Name: "Nationality", Class: QuasiIdentifier, Kind: Text},
		Column{Name: "Condition", Class: Sensitive, Kind: Text},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func tableI(t *testing.T) *Table {
	t.Helper()
	tb := New(tableISchema(t))
	tb.MustAppendRow(Str("Alice"), Str("111-111-1111"), Num(13053), Num(28), Str("Russian"), Str("AIDS"))
	tb.MustAppendRow(Str("Bob"), Str("222-222-2222"), Num(13068), Num(29), Str("American"), Str("Flu"))
	tb.MustAppendRow(Str("Christine"), Str("333-333-3333"), Num(13068), Num(21), Str("Japanese"), Str("Cancer"))
	tb.MustAppendRow(Str("Robert"), Str("444-444-4444"), Num(13053), Num(23), Str("American"), Str("Meningitis"))
	return tb
}

func TestSchemaBasics(t *testing.T) {
	s := tableISchema(t)
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	i, err := s.Lookup("Age")
	if err != nil || i != 3 {
		t.Errorf("Lookup(Age) = %d, %v", i, err)
	}
	if _, err := s.Lookup("Salary"); err == nil {
		t.Error("Lookup(Salary) should fail")
	}
	if !s.Has("Zipcode") || s.Has("zipcode") {
		t.Error("Has is case-sensitive exact match")
	}
	if got := s.NamesOf(QuasiIdentifier); len(got) != 3 || got[0] != "Zipcode" {
		t.Errorf("NamesOf(QI) = %v", got)
	}
	if got := s.IndicesOf(Sensitive); len(got) != 1 || got[0] != 5 {
		t.Errorf("IndicesOf(Sensitive) = %v", got)
	}
	if got := s.IndicesOf(Identifier); len(got) != 2 {
		t.Errorf("IndicesOf(Identifier) = %v", got)
	}
}

func TestSchemaRejectsBadColumns(t *testing.T) {
	if _, err := NewSchema(Column{Name: "", Kind: Text}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewSchema(
		Column{Name: "A", Kind: Text}, Column{Name: "A", Kind: Number},
	); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := NewSchema(Column{Name: "A", Kind: Interval}); err == nil {
		t.Error("interval declared kind accepted")
	}
	if _, err := NewSchema(Column{Name: "A", Kind: Null}); err == nil {
		t.Error("null declared kind accepted")
	}
}

func TestSchemaProjectAndWithClass(t *testing.T) {
	s := tableISchema(t)
	p, err := s.Project("Age", "Name")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.Len() != 2 || p.Column(0).Name != "Age" || p.Column(1).Name != "Name" {
		t.Errorf("Project order wrong: %v", p.Names())
	}
	if _, err := s.Project("Nope"); err == nil {
		t.Error("Project unknown column accepted")
	}
	w, err := s.WithClass("Age", Sensitive)
	if err != nil {
		t.Fatalf("WithClass: %v", err)
	}
	if w.Column(3).Class != Sensitive {
		t.Error("WithClass did not reclassify")
	}
	if s.Column(3).Class != QuasiIdentifier {
		t.Error("WithClass mutated the original schema")
	}
}

func TestAttrClassParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want AttrClass
	}{
		{"id", Identifier}, {"Identifier", Identifier},
		{"qi", QuasiIdentifier}, {"QUASI-IDENTIFIER", QuasiIdentifier}, {"quasi", QuasiIdentifier},
		{"s", Sensitive}, {"sensitive", Sensitive},
	} {
		got, err := ParseAttrClass(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseAttrClass(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseAttrClass("secret"); err == nil {
		t.Error("ParseAttrClass(secret) should fail")
	}
}

func TestTableAppendValidation(t *testing.T) {
	tb := New(tableISchema(t))
	if err := tb.AppendRow([]Value{Str("x")}); err == nil {
		t.Error("short row accepted")
	}
	row := []Value{Str("A"), Str("1"), Str("not-a-number"), Num(1), Str("US"), Str("Flu")}
	if err := tb.AppendRow(row); err == nil {
		t.Error("text in numeric column accepted")
	}
	// Interval and Null are fine in numeric columns.
	row = []Value{Str("A"), Str("1"), Span(13000, 14000), NullValue(), Str("US"), Str("Flu")}
	if err := tb.AppendRow(row); err != nil {
		t.Errorf("interval/null in numeric column rejected: %v", err)
	}
	// Null in text column is fine too.
	row = []Value{NullValue(), Str("1"), Num(1), Num(1), Str("US"), Str("Flu")}
	if err := tb.AppendRow(row); err != nil {
		t.Errorf("null in text column rejected: %v", err)
	}
	// Number in text column is not.
	row = []Value{Num(7), Str("1"), Num(1), Num(1), Str("US"), Str("Flu")}
	if err := tb.AppendRow(row); err == nil {
		t.Error("number in text column accepted")
	}
}

func TestTableRowIsolation(t *testing.T) {
	tb := tableI(t)
	r := tb.Row(0)
	r[0] = Str("Mallory")
	if got, _ := tb.Cell(0, 0).Text(); got != "Alice" {
		t.Error("Row did not return a copy")
	}
	in := []Value{Str("E"), Str("5"), Num(1), Num(1), Str("US"), Str("Flu")}
	if err := tb.AppendRow(in); err != nil {
		t.Fatal(err)
	}
	in[0] = Str("Mallory")
	if got, _ := tb.Cell(4, 0).Text(); got != "E" {
		t.Error("AppendRow did not copy the row")
	}
}

func TestTableCloneIndependence(t *testing.T) {
	tb := tableI(t)
	cp := tb.Clone()
	if !tb.Equal(cp) {
		t.Fatal("clone not equal")
	}
	if err := cp.SetCell(0, 3, Num(99)); err != nil {
		t.Fatal(err)
	}
	if tb.Cell(0, 3).MustFloat() == 99 {
		t.Error("clone shares row storage")
	}
}

func TestTableProjectSelect(t *testing.T) {
	tb := tableI(t)
	p, err := tb.Project("Name", "Condition")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.NumCols() != 2 || p.NumRows() != 4 {
		t.Fatalf("Project shape = %dx%d", p.NumRows(), p.NumCols())
	}
	if got, _ := p.Cell(2, 1).Text(); got != "Cancer" {
		t.Errorf("projected cell = %q", got)
	}
	sel := tb.Select(func(row []Value) bool {
		n, _ := row[4].Text()
		return n == "American"
	})
	if sel.NumRows() != 2 {
		t.Errorf("Select rows = %d, want 2", sel.NumRows())
	}
}

func TestTableSortByColumn(t *testing.T) {
	tb := tableI(t)
	tb.SortByColumn(3) // Age
	ages := tb.ColumnFloats(3, -1)
	for i := 1; i < len(ages); i++ {
		if ages[i-1] > ages[i] {
			t.Fatalf("not sorted: %v", ages)
		}
	}
}

func TestColumnExtraction(t *testing.T) {
	tb := tableI(t)
	f := tb.ColumnFloats(3, -1)
	if f[0] != 28 || f[3] != 23 {
		t.Errorf("ColumnFloats = %v", f)
	}
	s := tb.ColumnStrings(0)
	if s[1] != "Bob" {
		t.Errorf("ColumnStrings = %v", s)
	}
	// default used for nulls
	tb.SuppressColumn(3)
	f = tb.ColumnFloats(3, -1)
	for _, x := range f {
		if x != -1 {
			t.Errorf("suppressed column float = %v", x)
		}
	}
	// ColumnStrings yields "" on non-text
	if got := tb.ColumnStrings(2); got[0] != "" {
		t.Errorf("non-text ColumnStrings = %q", got[0])
	}
}

func TestTableMatrix(t *testing.T) {
	tb := tableI(t)
	m := tb.Matrix([]int{2, 3}, 0)
	if len(m) != 4 || len(m[0]) != 2 {
		t.Fatalf("matrix shape %dx%d", len(m), len(m[0]))
	}
	if m[0][0] != 13053 || m[0][1] != 28 {
		t.Errorf("matrix row 0 = %v", m[0])
	}
	// Interval midpoints flow through.
	if err := tb.SetCell(0, 3, Span(20, 30)); err != nil {
		t.Fatal(err)
	}
	m = tb.Matrix([]int{3}, 0)
	if m[0][0] != 25 {
		t.Errorf("interval midpoint in matrix = %v", m[0][0])
	}
}

func TestGroupBy(t *testing.T) {
	tb := tableI(t)
	groups := tb.GroupBy([]int{2}) // Zipcode: 13053 ×2, 13068 ×2
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	for _, g := range groups {
		if len(g) != 2 {
			t.Errorf("group size = %d, want 2", len(g))
		}
	}
	// Grouping by all QIs gives 4 singletons here.
	qis := tb.Schema().IndicesOf(QuasiIdentifier)
	groups = tb.GroupBy(qis)
	if len(groups) != 4 {
		t.Errorf("QI groups = %d, want 4", len(groups))
	}
	// Determinism.
	a := tb.GroupBy(qis)
	b := tb.GroupBy(qis)
	for i := range a {
		if len(a[i]) != len(b[i]) || a[i][0] != b[i][0] {
			t.Fatal("GroupBy not deterministic")
		}
	}
}

func TestSuppressColumn(t *testing.T) {
	tb := tableI(t)
	tb.SuppressColumn(5)
	for i := 0; i < tb.NumRows(); i++ {
		if !tb.Cell(i, 5).IsNull() {
			t.Fatalf("row %d condition not suppressed", i)
		}
	}
}

func TestTableString(t *testing.T) {
	tb := tableI(t)
	s := tb.String()
	if !strings.Contains(s, "Name") || !strings.Contains(s, "Christine") {
		t.Errorf("String missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("String has %d lines, want 5", len(lines))
	}
}

func TestCellByNameAndSetCellValidation(t *testing.T) {
	tb := tableI(t)
	v, err := tb.CellByName(1, "Condition")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := v.Text(); got != "Flu" {
		t.Errorf("CellByName = %q", got)
	}
	if _, err := tb.CellByName(1, "Nope"); err == nil {
		t.Error("CellByName unknown column accepted")
	}
	if err := tb.SetCell(0, 0, Num(3)); err == nil {
		t.Error("SetCell kind violation accepted")
	}
}
