package dataset

import (
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	tb := tableI(t)
	if err := tb.SetCell(0, 3, Span(20, 30)); err != nil { // Age interval
		t.Fatal(err)
	}
	tb.SuppressColumn(5)
	sums := Summarize(tb)
	if len(sums) != 6 {
		t.Fatalf("summaries = %d", len(sums))
	}
	age := sums[3]
	if age.Name != "Age" || age.Class != QuasiIdentifier || age.Kind != Number {
		t.Errorf("age meta = %+v", age)
	}
	if age.Generalized != 1 {
		t.Errorf("age generalized = %d", age.Generalized)
	}
	// Ages: interval midpoint 25, then 29, 21, 23 → min 21, max 29.
	if age.Min != 21 || age.Max != 29 {
		t.Errorf("age range = [%g, %g]", age.Min, age.Max)
	}
	if age.Mean != (25+29+21+23)/4.0 {
		t.Errorf("age mean = %g", age.Mean)
	}
	cond := sums[5]
	if cond.Nulls != 4 || cond.Distinct != 1 {
		t.Errorf("condition = %+v", cond)
	}
	// Text column numeric stats stay zero.
	if sums[0].Min != 0 || sums[0].Max != 0 || sums[0].Mean != 0 {
		t.Errorf("name stats = %+v", sums[0])
	}
}

func TestFormatSummary(t *testing.T) {
	out := FormatSummary(tableI(t))
	for _, want := range []string{"4 rows, 6 columns", "Zipcode", "quasi-identifier", "mean="} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAppendTable(t *testing.T) {
	a := tableI(t)
	b := tableI(t)
	if err := a.AppendTable(b); err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 8 {
		t.Errorf("rows = %d", a.NumRows())
	}
	// Different schema rejected.
	other := New(MustSchema(Column{Name: "X", Class: Sensitive, Kind: Number}))
	if err := a.AppendTable(other); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestDistinctValues(t *testing.T) {
	tb := tableI(t)
	got := tb.DistinctValues(2) // Zipcode: 13053, 13068
	if len(got) != 2 || got[0] != "13053" || got[1] != "13068" {
		t.Errorf("distinct = %v", got)
	}
}
