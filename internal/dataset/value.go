// Package dataset implements the relational table substrate used throughout
// the reproduction: typed cells, attribute classification (identifier /
// quasi-identifier / sensitive), schemas, tables and CSV round-trips.
//
// Tables model the paper's objects directly: the private data P, the
// anonymized release P', the web auxiliary data Q and the adversary's
// estimate P̂ are all dataset.Table values.
package dataset

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ValueKind discriminates the concrete type held by a Value.
type ValueKind int

// The supported cell kinds. Interval cells represent generalized numeric
// values such as "[5-10]" in Table III of the paper; Null cells represent
// suppressed values ("*").
const (
	Null ValueKind = iota
	Number
	Text
	Interval
)

// String returns the kind name for diagnostics.
func (k ValueKind) String() string {
	switch k {
	case Null:
		return "null"
	case Number:
		return "number"
	case Text:
		return "text"
	case Interval:
		return "interval"
	default:
		return fmt.Sprintf("ValueKind(%d)", int(k))
	}
}

// Value is a single table cell. The zero Value is Null.
//
// Value is a small immutable struct passed by value; all constructors return
// Values, never pointers.
type Value struct {
	kind ValueKind
	num  float64
	str  string
	lo   float64
	hi   float64
}

// NullValue returns the suppressed cell ("*").
func NullValue() Value { return Value{} }

// Num returns a numeric cell.
func Num(v float64) Value { return Value{kind: Number, num: v} }

// Str returns a categorical/text cell.
func Str(s string) Value { return Value{kind: Text, str: s} }

// Span returns an interval cell [lo, hi]. It panics if lo > hi, which always
// indicates a programming error in an anonymizer.
func Span(lo, hi float64) Value {
	if lo > hi {
		panic(fmt.Sprintf("dataset: invalid interval [%g, %g]", lo, hi))
	}
	return Value{kind: Interval, lo: lo, hi: hi}
}

// Kind reports the cell kind.
func (v Value) Kind() ValueKind { return v.kind }

// IsNull reports whether the cell is suppressed.
func (v Value) IsNull() bool { return v.kind == Null }

// Float returns the numeric content of the cell and whether it has one.
// Numbers return themselves; intervals return their midpoint, matching the
// adversary's convention of reading a generalized value as its center.
func (v Value) Float() (float64, bool) {
	switch v.kind {
	case Number:
		return v.num, true
	case Interval:
		return (v.lo + v.hi) / 2, true
	default:
		return 0, false
	}
}

// MustFloat is Float for cells known to be numeric; it panics otherwise.
func (v Value) MustFloat() float64 {
	f, ok := v.Float()
	if !ok {
		panic(fmt.Sprintf("dataset: MustFloat on %s cell", v.kind))
	}
	return f
}

// Text returns the string content and whether the cell is a text cell.
func (v Value) Text() (string, bool) {
	if v.kind == Text {
		return v.str, true
	}
	return "", false
}

// Bounds returns the interval bounds. Numbers are degenerate intervals
// [v, v]. The second result reports whether bounds are defined.
func (v Value) Bounds() (lo, hi float64, ok bool) {
	switch v.kind {
	case Number:
		return v.num, v.num, true
	case Interval:
		return v.lo, v.hi, true
	default:
		return 0, 0, false
	}
}

// Width returns hi−lo for cells with bounds and 0 otherwise. It is the
// generalization "coarseness" used by information-loss metrics.
func (v Value) Width() float64 {
	lo, hi, ok := v.Bounds()
	if !ok {
		return 0
	}
	return hi - lo
}

// Contains reports whether x lies inside the cell's bounds (inclusive).
// Null and text cells contain nothing.
func (v Value) Contains(x float64) bool {
	lo, hi, ok := v.Bounds()
	return ok && x >= lo && x <= hi
}

// Equal reports deep equality of two cells. Numeric comparison is exact;
// callers needing tolerance should compare Float results themselves.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case Null:
		return true
	case Number:
		return v.num == w.num || (math.IsNaN(v.num) && math.IsNaN(w.num))
	case Text:
		return v.str == w.str
	case Interval:
		return v.lo == w.lo && v.hi == w.hi
	default:
		return false
	}
}

// Compare orders cells of the same kind: numbers and intervals by midpoint
// then width, text lexicographically. Nulls sort before everything. Cells of
// different kinds order by kind. The result is -1, 0 or +1.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		return cmpInt(int(v.kind), int(w.kind))
	}
	switch v.kind {
	case Null:
		return 0
	case Text:
		return strings.Compare(v.str, w.str)
	default:
		vm, _ := v.Float()
		wm, _ := w.Float()
		if c := cmpFloat(vm, wm); c != 0 {
			return c
		}
		return cmpFloat(v.Width(), w.Width())
	}
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// String renders the cell the way the paper's tables do: numbers plainly,
// intervals as "[lo-hi]" and suppressed cells as "*".
func (v Value) String() string {
	switch v.kind {
	case Null:
		return "*"
	case Number:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case Text:
		return v.str
	case Interval:
		return fmt.Sprintf("[%s-%s]",
			strconv.FormatFloat(v.lo, 'g', -1, 64),
			strconv.FormatFloat(v.hi, 'g', -1, 64))
	default:
		return "?"
	}
}

// ParseValue parses the String encoding back into a Value: "*" → Null,
// "[a-b]" → Span, a float literal → Num, anything else → Str.
func ParseValue(s string) (Value, error) {
	s = strings.TrimSpace(s)
	if s == "*" || s == "" {
		return NullValue(), nil
	}
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		body := s[1 : len(s)-1]
		// Split on the dash separating the bounds, honouring negative
		// numbers ("[-3--1]" means [-3, -1]).
		lo, hi, err := splitIntervalBody(body)
		if err != nil {
			return Value{}, fmt.Errorf("dataset: parse interval %q: %w", s, err)
		}
		if lo > hi {
			return Value{}, fmt.Errorf("dataset: parse interval %q: lower bound above upper", s)
		}
		return Span(lo, hi), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Num(f), nil
	}
	return Str(s), nil
}

func splitIntervalBody(body string) (lo, hi float64, err error) {
	// The separator is the first '-' that is not the leading sign of either
	// bound and not part of an exponent.
	for i := 1; i < len(body); i++ {
		if body[i] != '-' {
			continue
		}
		if body[i-1] == 'e' || body[i-1] == 'E' {
			continue // exponent sign
		}
		l, errL := strconv.ParseFloat(strings.TrimSpace(body[:i]), 64)
		h, errH := strconv.ParseFloat(strings.TrimSpace(body[i+1:]), 64)
		if errL == nil && errH == nil {
			return l, h, nil
		}
	}
	return 0, 0, fmt.Errorf("no valid bound separator in %q", body)
}

// Generalize returns the tightest cell covering both inputs. Two equal text
// cells stay themselves; differing text cells generalize to Null (suppression
// — the DGH-aware path lives in internal/hierarchy). Cells with bounds
// generalize to the covering interval. Anything involving Null is Null.
func Generalize(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return NullValue()
	}
	if a.kind == Text || b.kind == Text {
		if a.Equal(b) {
			return a
		}
		return NullValue()
	}
	alo, ahi, _ := a.Bounds()
	blo, bhi, _ := b.Bounds()
	lo, hi := math.Min(alo, blo), math.Max(ahi, bhi)
	if lo == hi {
		return Num(lo)
	}
	return Span(lo, hi)
}
