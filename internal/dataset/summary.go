package dataset

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ColumnSummary describes one column's contents for CLI display and sanity
// checks before anonymization.
type ColumnSummary struct {
	Name  string
	Class AttrClass
	Kind  ValueKind
	// Nulls counts suppressed cells.
	Nulls int
	// Distinct counts distinct rendered values.
	Distinct int
	// Min, Max and Mean summarize numeric readings (interval midpoints);
	// they are zero when the column has no numeric cells.
	Min, Max, Mean float64
	// Generalized counts interval cells — non-zero only after anonymization.
	Generalized int
}

// Summarize computes per-column summaries.
func Summarize(t *Table) []ColumnSummary {
	out := make([]ColumnSummary, t.NumCols())
	for c := 0; c < t.NumCols(); c++ {
		col := t.Schema().Column(c)
		s := ColumnSummary{Name: col.Name, Class: col.Class, Kind: col.Kind}
		distinct := make(map[string]bool)
		var sum float64
		var numeric int
		s.Min, s.Max = math.Inf(1), math.Inf(-1)
		for r := 0; r < t.NumRows(); r++ {
			v := t.Cell(r, c)
			distinct[v.String()] = true
			if v.IsNull() {
				s.Nulls++
				continue
			}
			if v.Kind() == Interval {
				s.Generalized++
			}
			if f, ok := v.Float(); ok {
				numeric++
				sum += f
				s.Min = math.Min(s.Min, f)
				s.Max = math.Max(s.Max, f)
			}
		}
		s.Distinct = len(distinct)
		if numeric > 0 {
			s.Mean = sum / float64(numeric)
		} else {
			s.Min, s.Max = 0, 0
		}
		out[c] = s
	}
	return out
}

// FormatSummary renders the summaries as an aligned table.
func FormatSummary(t *Table) string {
	sums := Summarize(t)
	var b strings.Builder
	fmt.Fprintf(&b, "%d rows, %d columns\n", t.NumRows(), t.NumCols())
	for _, s := range sums {
		fmt.Fprintf(&b, "  %-16s %-16s %-7s distinct=%d nulls=%d",
			s.Name, s.Class, s.Kind, s.Distinct, s.Nulls)
		if s.Kind == Number {
			fmt.Fprintf(&b, " min=%g max=%g mean=%.4g generalized=%d", s.Min, s.Max, s.Mean, s.Generalized)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// AppendTable appends all of u's rows to t. Schemas must be equal.
func (t *Table) AppendTable(u *Table) error {
	if !t.schema.Equal(u.schema) {
		return fmt.Errorf("dataset: cannot append table with different schema")
	}
	scratch := make([]Value, u.NumCols())
	for i := 0; i < u.NumRows(); i++ {
		for j, c := range u.cols {
			scratch[j] = c.value(i)
		}
		if err := t.AppendRow(scratch); err != nil {
			return err
		}
	}
	return nil
}

// DistinctValues returns the sorted distinct rendered values of a column.
func (t *Table) DistinctValues(col int) []string {
	seen := make(map[string]bool)
	for i := 0; i < t.nrows; i++ {
		seen[t.cols[col].value(i).String()] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
