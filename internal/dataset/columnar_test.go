package dataset

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// mixedSchema has one column per declared kind plus a sensitive number —
// the shape the columnar round-trip properties exercise.
func mixedSchema() *Schema {
	return MustSchema(
		Column{Name: "Name", Class: Identifier, Kind: Text},
		Column{Name: "Q", Class: QuasiIdentifier, Kind: Number},
		Column{Name: "S", Class: Sensitive, Kind: Number},
	)
}

// randomValue derives a deterministic Value of any kind from fuzz bytes.
func randomValue(kind ValueKind, a, b uint8, f float64) Value {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		f = float64(a)
	}
	switch kind % 4 {
	case 0:
		return NullValue()
	case 1:
		return Num(f)
	case 2:
		lo := math.Min(f, float64(b))
		return Span(lo, lo+float64(a))
	default:
		return Str(string(rune('a'+a%26)) + string(rune('a'+b%26)))
	}
}

// TestColumnarRoundTripProperty: rows in → column buffers → rows out is the
// identity for every value kind and null placement.
func TestColumnarRoundTripProperty(t *testing.T) {
	f := func(kinds []uint8, floats []float64, salt uint8) bool {
		if len(kinds) > 40 {
			kinds = kinds[:40]
		}
		tb := New(mixedSchema())
		want := make([][]Value, len(kinds))
		for i, k := range kinds {
			f1 := 0.0
			if i < len(floats) {
				f1 = floats[i]
			}
			// Text column only holds Text/Null; numeric ones anything numeric.
			name := randomValue(ValueKind(3+4*(uint8(k)%2)), k, salt, f1) // Text or Null
			q := randomValue(ValueKind(k), k, salt, f1)
			if q.Kind() == Text {
				q = Num(float64(k))
			}
			s := randomValue(ValueKind(k/4), salt, k, f1)
			if s.Kind() == Text {
				s = NullValue()
			}
			row := []Value{name, q, s}
			if err := tb.AppendRow(row); err != nil {
				return false
			}
			want[i] = row
		}
		for i := range want {
			got := tb.Row(i)
			for j := range got {
				if !got[j].Equal(want[i][j]) {
					return false
				}
				if !tb.Cell(i, j).Equal(want[i][j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestColumnarSetCellRoundTrip overwrites cells across every kind transition
// (number→interval→null→text where legal) and checks reads.
func TestColumnarSetCellRoundTrip(t *testing.T) {
	tb := New(mixedSchema())
	tb.MustAppendRow(Str("a"), Num(1), Num(10))
	tb.MustAppendRow(Str("b"), Num(2), Num(20))
	steps := []struct {
		col int
		v   Value
	}{
		{1, Span(0, 4)},      // number → interval
		{1, Num(7)},          // interval → number
		{1, NullValue()},     // number → null
		{1, Span(1, 3)},      // null → interval
		{0, NullValue()},     // text → null
		{0, Str("re-added")}, // null → text
		{2, NullValue()},     // sensitive suppressed
		{2, Num(42)},         // and restored
	}
	for _, st := range steps {
		if err := tb.SetCell(0, st.col, st.v); err != nil {
			t.Fatalf("SetCell(%v): %v", st.v, err)
		}
		if got := tb.Cell(0, st.col); !got.Equal(st.v) {
			t.Fatalf("after SetCell(%v): Cell = %v", st.v, got)
		}
	}
	// Row 1 was never touched.
	if got := tb.Cell(1, 1); !got.Equal(Num(2)) {
		t.Errorf("untouched row changed: %v", got)
	}
}

// TestCopyOnWriteIsolation: clones and views share buffers until one side
// mutates, and mutation never leaks across tables in either direction.
func TestCopyOnWriteIsolation(t *testing.T) {
	tb := New(mixedSchema())
	tb.MustAppendRow(Str("alice"), Num(1), Num(100))
	tb.MustAppendRow(Str("bob"), Span(2, 4), Num(200))

	cp := tb.Clone()
	if !cp.Equal(tb) {
		t.Fatal("clone not equal")
	}
	// Mutate the clone: the original must not change.
	if err := cp.SetCell(0, 1, Num(99)); err != nil {
		t.Fatal(err)
	}
	cp.SuppressColumn(2)
	if got := tb.Cell(0, 1); !got.Equal(Num(1)) {
		t.Errorf("clone mutation leaked into original: %v", got)
	}
	if tb.Cell(0, 2).IsNull() {
		t.Error("clone suppression leaked into original")
	}
	// Mutate the original: the clone must not change.
	if err := tb.SetCell(1, 1, NullValue()); err != nil {
		t.Fatal(err)
	}
	if got := cp.Cell(1, 1); !got.Equal(Span(2, 4)) {
		t.Errorf("original mutation leaked into clone: %v", got)
	}
	// Appending to one table leaves the other at its old length.
	tb.MustAppendRow(Str("carol"), Num(3), Num(300))
	if cp.NumRows() != 2 {
		t.Errorf("append leaked into clone: %d rows", cp.NumRows())
	}

	// Projections share storage but isolate mutations too.
	pr, err := tb.Project("Name", "Q")
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.SetCell(0, 0, Str("mallory")); err != nil {
		t.Fatal(err)
	}
	if got, _ := tb.Cell(0, 0).Text(); got != "alice" {
		t.Errorf("projection mutation leaked: %q", got)
	}
}

// TestWithSuppressedView: the release projection hides columns without
// copying or touching the source.
func TestWithSuppressedView(t *testing.T) {
	tb := New(mixedSchema())
	tb.MustAppendRow(Str("alice"), Num(1), Num(100))
	tb.MustAppendRow(Str("bob"), Num(2), Num(200))
	rel := tb.WithSuppressed(2)
	for i := 0; i < rel.NumRows(); i++ {
		if !rel.Cell(i, 2).IsNull() {
			t.Fatalf("row %d sensitive cell not suppressed", i)
		}
	}
	if tb.Cell(0, 2).IsNull() {
		t.Error("WithSuppressed mutated the source")
	}
	if got := rel.Cell(1, 0); !got.Equal(Str("bob")) {
		t.Errorf("shared column corrupted: %v", got)
	}
}

// TestWithColumnFloats: the fused-estimate view replaces exactly one column.
func TestWithColumnFloats(t *testing.T) {
	tb := New(mixedSchema())
	tb.MustAppendRow(Str("alice"), Num(1), NullValue())
	tb.MustAppendRow(Str("bob"), Num(2), NullValue())
	est := []float64{111, 222}
	phat, err := tb.WithColumnFloats(2, est)
	if err != nil {
		t.Fatal(err)
	}
	est[0] = -1 // the view must have copied the slice
	if got := phat.Cell(0, 2); !got.Equal(Num(111)) {
		t.Errorf("estimate cell = %v", got)
	}
	if !tb.Cell(0, 2).IsNull() {
		t.Error("WithColumnFloats mutated the source")
	}
	if _, err := tb.WithColumnFloats(0, est); err == nil {
		t.Error("text column accepted floats")
	}
	if _, err := tb.WithColumnFloats(2, []float64{1}); err == nil {
		t.Error("wrong-length vector accepted")
	}
}

// TestFingerprintCanonical: equal cells fingerprint identically regardless of
// build history; any cell change perturbs the fingerprint.
func TestFingerprintCanonical(t *testing.T) {
	build := func(mutate bool) *Table {
		tb := New(mixedSchema())
		tb.MustAppendRow(Str("alice"), Span(1, 3), Num(100))
		tb.MustAppendRow(Str("bob"), Num(2), NullValue())
		if mutate {
			// Interning churn: overwrite text cells so the dictionary history
			// differs while the final cells are equal.
			if err := tb.SetCell(0, 0, Str("zzz")); err != nil {
				t.Fatal(err)
			}
			if err := tb.SetCell(0, 0, Str("alice")); err != nil {
				t.Fatal(err)
			}
		}
		return tb
	}
	fp := func(tb *Table) []byte {
		var buf bytes.Buffer
		if err := tb.WriteFingerprint(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(false), build(true)
	if !a.Equal(b) {
		t.Fatal("setup: tables should be equal")
	}
	if !bytes.Equal(fp(a), fp(b)) {
		t.Error("equal tables fingerprint differently")
	}
	if err := b.SetCell(1, 1, Num(3)); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(fp(a), fp(b)) {
		t.Error("different tables fingerprint identically")
	}
}
