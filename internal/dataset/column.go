package dataset

import (
	"sync/atomic"
)

// This file implements the columnar storage behind Table: one typed buffer
// per column, shared copy-on-write between tables. See DESIGN.md in this
// package for the layout and the sharing rules.

// bitset is a packed bit vector. A nil bitset reads as all-zero; it is grown
// lazily by ensure before the first set. get tolerates indices beyond the
// allocated words so short (or nil) bitmaps stay valid for any row index.
type bitset []uint64

func (b bitset) get(i int) bool {
	w := i >> 6
	if w >= len(b) {
		return false
	}
	return b[w]&(1<<(uint(i)&63)) != 0
}

func (b bitset) set(i int)   { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// ensure returns a bitset with capacity for bit i (allocating or growing).
func (b bitset) ensure(i int) bitset {
	need := i>>6 + 1
	if len(b) >= need {
		return b
	}
	nb := make(bitset, need)
	copy(nb, b)
	return nb
}

func (b bitset) clone() bitset {
	if b == nil {
		return nil
	}
	return append(bitset(nil), b...)
}

// allOnes returns a bitset with the first n bits set — the suppressed-column
// null map.
func allOnes(n int) bitset {
	b := make(bitset, (n+63)/64)
	for i := range b {
		b[i] = ^uint64(0)
	}
	return b
}

// intern is an append-only string dictionary shared copy-on-write between
// column storages. Lookups never mutate; appending a new string to a shared
// dictionary clones it first, so readers holding the old pointer are never
// raced.
type intern struct {
	refs atomic.Int32
	strs []string
	idx  map[string]int32
}

func newIntern() *intern {
	it := &intern{idx: make(map[string]int32)}
	it.refs.Store(1)
	return it
}

func (it *intern) clone() *intern {
	nd := &intern{
		strs: append([]string(nil), it.strs...),
		idx:  make(map[string]int32, len(it.idx)),
	}
	for s, id := range it.idx {
		nd.idx[s] = id
	}
	nd.refs.Store(1)
	return nd
}

// colData is the storage of one column. Tables share colData pointers;
// Clone, Project and the With* views bump refs, and mutators copy the buffers
// first when refs > 1 (see Table.ensureOwned).
//
// Number columns store the scalar value (or the interval lower bound) in num,
// interval upper bounds in hi (materialized on the first interval cell, with
// hi[i] == num[i] for plain numbers), and mark interval cells in spans. Text
// columns store dictionary ids in ids. Suppressed cells are marked in nulls;
// a column whose cells are all suppressed may have nil buffers (the zero-copy
// SuppressColumn representation) — readers check nulls first.
type colData struct {
	refs  atomic.Int32
	kind  ValueKind // declared column kind: Number or Text
	n     int
	nulls bitset

	num   []float64
	hi    []float64
	spans bitset

	ids  []int32
	dict *intern
}

func newColData(kind ValueKind) *colData {
	c := &colData{kind: kind}
	c.refs.Store(1)
	return c
}

// allNullCol is the suppressed-column storage: n null cells, no buffers.
func allNullCol(kind ValueKind, n int) *colData {
	c := &colData{kind: kind, n: n, nulls: allOnes(n)}
	c.refs.Store(1)
	return c
}

// copyData returns a privately owned copy of the buffers. The dictionary is
// shared (it is copy-on-append itself).
func (c *colData) copyData() *colData {
	d := &colData{
		kind:  c.kind,
		n:     c.n,
		nulls: c.nulls.clone(),
		spans: c.spans.clone(),
	}
	if c.num != nil {
		d.num = append([]float64(nil), c.num...)
	}
	if c.hi != nil {
		d.hi = append([]float64(nil), c.hi...)
	}
	if c.ids != nil {
		d.ids = append([]int32(nil), c.ids...)
	}
	if c.dict != nil {
		c.dict.refs.Add(1)
		d.dict = c.dict
	}
	d.refs.Store(1)
	return d
}

// value reconstructs the cell at row i.
func (c *colData) value(i int) Value {
	if c.nulls.get(i) {
		return Value{}
	}
	if c.kind == Text {
		return Value{kind: Text, str: c.dict.strs[c.ids[i]]}
	}
	if c.spans.get(i) {
		return Value{kind: Interval, lo: c.num[i], hi: c.hi[i]}
	}
	return Value{kind: Number, num: c.num[i]}
}

// float is the numeric reading of cell i (intervals at their midpoint),
// matching Value.Float bit for bit.
func (c *colData) float(i int) (float64, bool) {
	if c.kind == Text || c.nulls.get(i) {
		return 0, false
	}
	if c.spans.get(i) {
		return (c.num[i] + c.hi[i]) / 2, true
	}
	return c.num[i], true
}

// isNull reports whether cell i is suppressed.
func (c *colData) isNull(i int) bool { return c.nulls.get(i) }

// internID interns s in the column dictionary, cloning a shared dictionary
// before the first new append.
func (c *colData) internID(s string) int32 {
	if c.dict == nil {
		c.dict = newIntern()
	}
	if id, ok := c.dict.idx[s]; ok {
		return id
	}
	if c.dict.refs.Load() > 1 {
		// Clone before releasing the shared dictionary: decrementing first
		// could let another holder observe refs==1 and append in place while
		// the clone is still reading the map.
		nd := c.dict.clone()
		c.dict.refs.Add(-1)
		c.dict = nd
	}
	id := int32(len(c.dict.strs))
	c.dict.strs = append(c.dict.strs, s)
	c.dict.idx[s] = id
	return id
}

// appendValue appends a kind-validated cell. Callers must own the storage.
func (c *colData) appendValue(v Value) {
	i := c.n
	c.n++
	switch v.kind {
	case Null:
		c.nulls = c.nulls.ensure(i)
		c.nulls.set(i)
		// Keep materialized buffers row-aligned with placeholders.
		if c.ids != nil {
			c.ids = append(c.ids, 0)
		}
		if c.num != nil {
			c.num = append(c.num, 0)
			if c.hi != nil {
				c.hi = append(c.hi, 0)
			}
		}
	case Text:
		if c.ids == nil {
			c.ids = make([]int32, i, i+8)
		}
		c.ids = append(c.ids, c.internID(v.str))
	case Number:
		if c.num == nil {
			c.num = make([]float64, i, i+8)
		}
		c.num = append(c.num, v.num)
		if c.hi != nil {
			c.hi = append(c.hi, v.num)
		}
	case Interval:
		if c.num == nil {
			c.num = make([]float64, i, i+8)
		}
		c.num = append(c.num, v.lo)
		if c.hi == nil {
			c.hi = make([]float64, i, i+8)
			copy(c.hi, c.num[:i])
		}
		c.hi = append(c.hi, v.hi)
		c.spans = c.spans.ensure(i)
		c.spans.set(i)
	}
}

// setValue overwrites cell i with a kind-validated value. Callers must own
// the storage.
func (c *colData) setValue(i int, v Value) {
	if v.kind == Null {
		c.nulls = c.nulls.ensure(i)
		c.nulls.set(i)
		return
	}
	if c.nulls.get(i) {
		c.nulls.clear(i)
	}
	if v.kind == Text {
		if c.ids == nil {
			c.ids = make([]int32, c.n)
		}
		c.ids[i] = c.internID(v.str)
		return
	}
	if c.num == nil {
		c.num = make([]float64, c.n)
		if c.hi != nil {
			c.hi = make([]float64, c.n)
		}
	}
	switch v.kind {
	case Number:
		c.num[i] = v.num
		if c.hi != nil {
			c.hi[i] = v.num
		}
		if c.spans.get(i) {
			c.spans.clear(i)
		}
	case Interval:
		c.num[i] = v.lo
		if c.hi == nil {
			c.hi = append([]float64(nil), c.num...)
		}
		c.hi[i] = v.hi
		c.spans = c.spans.ensure(i)
		c.spans.set(i)
	}
}

// permute rebuilds the storage in the order given by perm (out[i] =
// old[perm[i]]). Callers must own the storage.
func (c *colData) permute(perm []int) {
	n := c.n
	var nulls bitset
	if c.nulls != nil {
		nulls = make(bitset, (n+63)/64)
	}
	var spans bitset
	if c.spans != nil {
		spans = make(bitset, (n+63)/64)
	}
	var num, hi []float64
	if c.num != nil {
		num = make([]float64, n)
	}
	if c.hi != nil {
		hi = make([]float64, n)
	}
	var ids []int32
	if c.ids != nil {
		ids = make([]int32, n)
	}
	for i, j := range perm {
		if c.nulls.get(j) {
			nulls = nulls.ensure(i)
			nulls.set(i)
		}
		if c.spans.get(j) {
			spans = spans.ensure(i)
			spans.set(i)
		}
		if num != nil {
			num[i] = c.num[j]
		}
		if hi != nil {
			hi[i] = c.hi[j]
		}
		if ids != nil {
			ids[i] = c.ids[j]
		}
	}
	c.nulls, c.spans, c.num, c.hi, c.ids = nulls, spans, num, hi, ids
}
