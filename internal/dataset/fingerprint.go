package dataset

import (
	"encoding/binary"
	"io"
	"math"
)

// WriteFingerprint writes a canonical binary encoding of the table — schema
// (names, classes, kinds) followed by every cell in column-major order, each
// as a kind tag plus its payload (float bits for numbers and bounds,
// length-prefixed bytes for text). Two tables with equal schemas and
// cellwise-equal rows produce identical byte streams regardless of how they
// were built, which is what lets the serving layer key its result cache on a
// hash of this stream instead of walking every cell through the CSV renderer.
func (t *Table) WriteFingerprint(w io.Writer) error {
	fw := &fingerprintWriter{w: w, buf: make([]byte, 0, 4096)}
	fw.u64(0xC01A11AF) // format magic ("columnar fingerprint"), version 0
	fw.u64(uint64(t.schema.Len()))
	fw.u64(uint64(t.nrows))
	for i := 0; i < t.schema.Len(); i++ {
		c := t.schema.Column(i)
		fw.str(c.Name)
		fw.byte(byte(c.Class))
		fw.byte(byte(c.Kind))
	}
	for _, c := range t.cols {
		fw.column(c, t.nrows)
	}
	fw.flush()
	return fw.err
}

type fingerprintWriter struct {
	w   io.Writer
	buf []byte
	err error
}

const (
	fpNull byte = iota
	fpNumber
	fpInterval
	fpText
)

func (f *fingerprintWriter) flush() {
	if f.err != nil || len(f.buf) == 0 {
		return
	}
	_, f.err = f.w.Write(f.buf)
	f.buf = f.buf[:0]
}

// room flushes if fewer than n bytes fit in the buffer.
func (f *fingerprintWriter) room(n int) {
	if len(f.buf)+n > cap(f.buf) {
		f.flush()
	}
}

func (f *fingerprintWriter) byte(b byte) {
	f.room(1)
	f.buf = append(f.buf, b)
}

func (f *fingerprintWriter) u64(v uint64) {
	f.room(8)
	f.buf = binary.LittleEndian.AppendUint64(f.buf, v)
}

func (f *fingerprintWriter) str(s string) {
	f.u64(uint64(len(s)))
	if len(s) > cap(f.buf) {
		// Oversized string: write through directly.
		f.flush()
		if f.err == nil {
			_, f.err = io.WriteString(f.w, s)
		}
		return
	}
	f.room(len(s))
	f.buf = append(f.buf, s...)
}

// column writes one column's cells in canonical per-cell form.
func (f *fingerprintWriter) column(c *colData, nrows int) {
	for i := 0; i < nrows; i++ {
		switch {
		case c.nulls.get(i):
			f.byte(fpNull)
		case c.kind == Text:
			f.byte(fpText)
			f.str(c.dict.strs[c.ids[i]])
		case c.spans.get(i):
			f.room(17)
			f.buf = append(f.buf, fpInterval)
			f.buf = binary.LittleEndian.AppendUint64(f.buf, math.Float64bits(c.num[i]))
			f.buf = binary.LittleEndian.AppendUint64(f.buf, math.Float64bits(c.hi[i]))
		default:
			f.room(9)
			f.buf = append(f.buf, fpNumber)
			f.buf = binary.LittleEndian.AppendUint64(f.buf, math.Float64bits(c.num[i]))
		}
	}
}
