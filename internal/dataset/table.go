package dataset

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Table is an in-memory relation: a schema plus rows of cells. Tables are
// the universal currency of the reproduction — the private data P, candidate
// releases P', web data Q and fused estimates P̂ are all Tables.
//
// A Table is not safe for concurrent mutation; concurrent reads are fine.
type Table struct {
	schema *Schema
	rows   [][]Value
}

// ErrRowWidth is returned when a row's length does not match the schema.
var ErrRowWidth = errors.New("dataset: row width does not match schema")

// ErrKindMismatch is returned when a cell kind violates its column kind.
var ErrKindMismatch = errors.New("dataset: cell kind does not match column")

// New returns an empty table with the given schema.
func New(schema *Schema) *Table {
	return &Table{schema: schema}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return len(t.rows) }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return t.schema.Len() }

// AppendRow validates and appends a row. The slice is copied.
func (t *Table) AppendRow(row []Value) error {
	if len(row) != t.schema.Len() {
		return fmt.Errorf("%w: got %d cells, want %d", ErrRowWidth, len(row), t.schema.Len())
	}
	for i, v := range row {
		if !t.schema.Column(i).accepts(v) {
			return fmt.Errorf("%w: column %q (%s) cannot hold %s cell",
				ErrKindMismatch, t.schema.Column(i).Name, t.schema.Column(i).Kind, v.Kind())
		}
	}
	cp := make([]Value, len(row))
	copy(cp, row)
	t.rows = append(t.rows, cp)
	return nil
}

// MustAppendRow is AppendRow that panics on error, for statically known rows.
func (t *Table) MustAppendRow(row ...Value) {
	if err := t.AppendRow(row); err != nil {
		panic(err)
	}
}

// Row returns the i'th row as a copy.
func (t *Table) Row(i int) []Value {
	cp := make([]Value, len(t.rows[i]))
	copy(cp, t.rows[i])
	return cp
}

// Cell returns the cell at (row, col).
func (t *Table) Cell(row, col int) Value { return t.rows[row][col] }

// CellByName returns the cell at (row, named column).
func (t *Table) CellByName(row int, col string) (Value, error) {
	i, err := t.schema.Lookup(col)
	if err != nil {
		return Value{}, err
	}
	return t.rows[row][i], nil
}

// SetCell overwrites the cell at (row, col) after kind validation.
func (t *Table) SetCell(row, col int, v Value) error {
	if !t.schema.Column(col).accepts(v) {
		return fmt.Errorf("%w: column %q (%s) cannot hold %s cell",
			ErrKindMismatch, t.schema.Column(col).Name, t.schema.Column(col).Kind, v.Kind())
	}
	t.rows[row][col] = v
	return nil
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := &Table{schema: t.schema, rows: make([][]Value, len(t.rows))}
	for i, r := range t.rows {
		cp := make([]Value, len(r))
		copy(cp, r)
		out.rows[i] = cp
	}
	return out
}

// Project returns a new table with only the named columns.
func (t *Table) Project(names ...string) (*Table, error) {
	ps, err := t.schema.Project(names...)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(names))
	for i, n := range names {
		idx[i] = t.schema.MustLookup(n)
	}
	out := New(ps)
	for _, r := range t.rows {
		row := make([]Value, len(idx))
		for i, j := range idx {
			row[i] = r[j]
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

// Select returns a new table containing the rows for which keep returns true.
func (t *Table) Select(keep func(row []Value) bool) *Table {
	out := New(t.schema)
	for _, r := range t.rows {
		if keep(r) {
			cp := make([]Value, len(r))
			copy(cp, r)
			out.rows = append(out.rows, cp)
		}
	}
	return out
}

// SortByColumn stably sorts rows by the given column using Value.Compare.
func (t *Table) SortByColumn(col int) {
	sort.SliceStable(t.rows, func(i, j int) bool {
		return t.rows[i][col].Compare(t.rows[j][col]) < 0
	})
}

// ColumnFloats extracts a numeric column as a float slice. Cells without a
// numeric reading (Null, Text) yield def.
func (t *Table) ColumnFloats(col int, def float64) []float64 {
	out := make([]float64, len(t.rows))
	for i, r := range t.rows {
		if f, ok := r[col].Float(); ok {
			out[i] = f
		} else {
			out[i] = def
		}
	}
	return out
}

// ColumnStrings extracts a text column; non-text cells yield "".
func (t *Table) ColumnStrings(col int) []string {
	out := make([]string, len(t.rows))
	for i, r := range t.rows {
		if s, ok := r[col].Text(); ok {
			out[i] = s
		}
	}
	return out
}

// Matrix extracts the given columns as a dense row-major float matrix, using
// Value.Float (interval midpoints) and def for non-numeric cells. This is the
// numeric view the dissimilarity metric of Definition 1 operates on.
func (t *Table) Matrix(cols []int, def float64) [][]float64 {
	out := make([][]float64, len(t.rows))
	for i, r := range t.rows {
		row := make([]float64, len(cols))
		for j, c := range cols {
			if f, ok := r[c].Float(); ok {
				row[j] = f
			} else {
				row[j] = def
			}
		}
		out[i] = row
	}
	return out
}

// SuppressColumn nulls out an entire column — how the paper removes the
// sensitive attribute from a release while keeping the column in the schema.
func (t *Table) SuppressColumn(col int) {
	for _, r := range t.rows {
		r[col] = NullValue()
	}
}

// Equal reports whether two tables have equal schemas and cellwise-equal rows.
func (t *Table) Equal(u *Table) bool {
	if !t.schema.Equal(u.schema) || len(t.rows) != len(u.rows) {
		return false
	}
	for i := range t.rows {
		for j := range t.rows[i] {
			if !t.rows[i][j].Equal(u.rows[i][j]) {
				return false
			}
		}
	}
	return true
}

// GroupBy partitions row indices by the rendered values of the given columns.
// It is the equivalence-class computation used by k-anonymity checks and the
// discernibility metric: rows with identical (generalized) cells in cols fall
// in one group. Group order is deterministic (lexicographic by key).
func (t *Table) GroupBy(cols []int) [][]int {
	groups := make(map[string][]int)
	var keys []string
	var b strings.Builder
	for i, r := range t.rows {
		b.Reset()
		for _, c := range cols {
			b.WriteString(r[c].String())
			b.WriteByte('\x1f')
		}
		k := b.String()
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], i)
	}
	sort.Strings(keys)
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, groups[k])
	}
	return out
}

// String renders the table in the aligned plain-text style of the paper's
// tables, suitable for examples and CLI output.
func (t *Table) String() string {
	widths := make([]int, t.schema.Len())
	header := t.schema.Names()
	for i, h := range header {
		widths[i] = len(h)
	}
	rendered := make([][]string, len(t.rows))
	for i, r := range t.rows {
		cells := make([]string, len(r))
		for j, v := range r {
			cells[j] = v.String()
			if len(cells[j]) > widths[j] {
				widths[j] = len(cells[j])
			}
		}
		rendered[i] = cells
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for j, c := range cells {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[j]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, cells := range rendered {
		writeRow(cells)
	}
	return b.String()
}
