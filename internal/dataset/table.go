package dataset

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Table is an in-memory relation: a schema plus typed column buffers. Tables
// are the universal currency of the reproduction — the private data P,
// candidate releases P', web data Q and fused estimates P̂ are all Tables.
//
// Storage is columnar (see DESIGN.md): one typed buffer per column, shared
// copy-on-write between tables. Clone, Project, WithSuppressed and
// WithColumnFloats are O(columns); mutating a table copies only the columns
// it touches. A Table is not safe for concurrent mutation; concurrent reads
// (including Clone and the With* views) are fine.
type Table struct {
	schema *Schema
	nrows  int
	cols   []*colData
}

// ErrRowWidth is returned when a row's length does not match the schema.
var ErrRowWidth = errors.New("dataset: row width does not match schema")

// ErrKindMismatch is returned when a cell kind violates its column kind.
var ErrKindMismatch = errors.New("dataset: cell kind does not match column")

// ErrTooFewRecords is the typed "k exceeds the table" condition every
// anonymizer wraps: a requested anonymization level needs more records than
// the table holds. Callers detect it with errors.Is (see core.EndsSweep).
var ErrTooFewRecords = errors.New("dataset: too few records for the requested anonymization level")

// New returns an empty table with the given schema.
func New(schema *Schema) *Table {
	cols := make([]*colData, schema.Len())
	for i := range cols {
		cols[i] = newColData(schema.Column(i).Kind)
	}
	return &Table{schema: schema, cols: cols}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.nrows }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return t.schema.Len() }

// ensureOwned makes column j privately owned (copying shared buffers) and
// returns its storage. Every mutation goes through it.
func (t *Table) ensureOwned(j int) *colData {
	c := t.cols[j]
	if c.refs.Load() > 1 {
		d := c.copyData()
		c.refs.Add(-1)
		t.cols[j] = d
		return d
	}
	return c
}

// checkRow validates a row against the schema.
func (t *Table) checkRow(row []Value) error {
	if len(row) != t.schema.Len() {
		return fmt.Errorf("%w: got %d cells, want %d", ErrRowWidth, len(row), t.schema.Len())
	}
	for i, v := range row {
		if !t.schema.Column(i).accepts(v) {
			return fmt.Errorf("%w: column %q (%s) cannot hold %s cell",
				ErrKindMismatch, t.schema.Column(i).Name, t.schema.Column(i).Kind, v.Kind())
		}
	}
	return nil
}

// AppendRow validates and appends a row. The slice is not retained.
func (t *Table) AppendRow(row []Value) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	for j, v := range row {
		t.ensureOwned(j).appendValue(v)
	}
	t.nrows++
	return nil
}

// MustAppendRow is AppendRow that panics on error, for statically known rows.
func (t *Table) MustAppendRow(row ...Value) {
	if err := t.AppendRow(row); err != nil {
		panic(err)
	}
}

// Row returns the i'th row as a fresh slice.
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.cols))
	for j, c := range t.cols {
		out[j] = c.value(i)
	}
	return out
}

// Cell returns the cell at (row, col).
func (t *Table) Cell(row, col int) Value { return t.cols[col].value(row) }

// CellByName returns the cell at (row, named column).
func (t *Table) CellByName(row int, col string) (Value, error) {
	i, err := t.schema.Lookup(col)
	if err != nil {
		return Value{}, err
	}
	return t.cols[i].value(row), nil
}

// SetCell overwrites the cell at (row, col) after kind validation.
func (t *Table) SetCell(row, col int, v Value) error {
	if !t.schema.Column(col).accepts(v) {
		return fmt.Errorf("%w: column %q (%s) cannot hold %s cell",
			ErrKindMismatch, t.schema.Column(col).Name, t.schema.Column(col).Kind, v.Kind())
	}
	t.ensureOwned(col).setValue(row, v)
	return nil
}

// Clone returns an independent copy of the table. Column buffers are shared
// copy-on-write, so Clone is O(columns); either table copies a column only
// when it first mutates it.
func (t *Table) Clone() *Table {
	cols := make([]*colData, len(t.cols))
	for i, c := range t.cols {
		c.refs.Add(1)
		cols[i] = c
	}
	return &Table{schema: t.schema, nrows: t.nrows, cols: cols}
}

// Project returns a new table with only the named columns. The column
// buffers are shared copy-on-write with the receiver.
func (t *Table) Project(names ...string) (*Table, error) {
	ps, err := t.schema.Project(names...)
	if err != nil {
		return nil, err
	}
	cols := make([]*colData, len(names))
	for i, n := range names {
		c := t.cols[t.schema.MustLookup(n)]
		c.refs.Add(1)
		cols[i] = c
	}
	return &Table{schema: ps, nrows: t.nrows, cols: cols}, nil
}

// Select returns a new table containing the rows for which keep returns true.
func (t *Table) Select(keep func(row []Value) bool) *Table {
	out := New(t.schema)
	scratch := make([]Value, len(t.cols))
	for i := 0; i < t.nrows; i++ {
		for j, c := range t.cols {
			scratch[j] = c.value(i)
		}
		if keep(scratch) {
			for j, v := range scratch {
				out.cols[j].appendValue(v)
			}
			out.nrows++
		}
	}
	return out
}

// SortByColumn stably sorts rows by the given column using Value.Compare.
func (t *Table) SortByColumn(col int) {
	perm := make([]int, t.nrows)
	for i := range perm {
		perm[i] = i
	}
	c := t.cols[col]
	sort.SliceStable(perm, func(i, j int) bool {
		return c.value(perm[i]).Compare(c.value(perm[j])) < 0
	})
	for j := range t.cols {
		t.ensureOwned(j).permute(perm)
	}
}

// ColumnFloats extracts a numeric column as a float slice. Cells without a
// numeric reading (Null, Text) yield def.
func (t *Table) ColumnFloats(col int, def float64) []float64 {
	return t.AppendColumnFloats(make([]float64, 0, t.nrows), col, def)
}

// AppendColumnFloats appends the numeric reading of every cell in the column
// to dst (def for cells without one) and returns the extended slice — the
// allocation-free form of ColumnFloats for hot paths.
func (t *Table) AppendColumnFloats(dst []float64, col int, def float64) []float64 {
	c := t.cols[col]
	if c.kind == Number && c.nulls == nil && c.spans == nil {
		return append(dst, c.num[:t.nrows]...)
	}
	for i := 0; i < t.nrows; i++ {
		if f, ok := c.float(i); ok {
			dst = append(dst, f)
		} else {
			dst = append(dst, def)
		}
	}
	return dst
}

// FloatColumn returns the numeric reading of every cell (interval midpoints)
// plus a presence mask — the columnar input to feature assembly and
// imputation.
func (t *Table) FloatColumn(col int) (vals []float64, present []bool) {
	c := t.cols[col]
	vals = make([]float64, t.nrows)
	present = make([]bool, t.nrows)
	for i := 0; i < t.nrows; i++ {
		vals[i], present[i] = c.float(i)
	}
	return vals, present
}

// FloatColumnInto fills vals and present (each of length NumRows) with the
// numeric reading and presence of every cell — FloatColumn into caller-owned
// buffers, for arena-backed feature assembly.
func (t *Table) FloatColumnInto(col int, vals []float64, present []bool) {
	c := t.cols[col]
	for i := 0; i < t.nrows; i++ {
		vals[i], present[i] = c.float(i)
	}
}

// ColumnStrings extracts a text column; non-text cells yield "".
func (t *Table) ColumnStrings(col int) []string {
	out := make([]string, t.nrows)
	c := t.cols[col]
	if c.kind != Text {
		return out
	}
	for i := 0; i < t.nrows; i++ {
		if !c.nulls.get(i) {
			out[i] = c.dict.strs[c.ids[i]]
		}
	}
	return out
}

// Matrix extracts the given columns as a dense row-major float matrix, using
// Value.Float (interval midpoints) and def for non-numeric cells. This is the
// numeric view the dissimilarity metric of Definition 1 operates on.
func (t *Table) Matrix(cols []int, def float64) [][]float64 {
	out := make([][]float64, t.nrows)
	flat := make([]float64, t.nrows*len(cols))
	for i := range out {
		// Full slice expression: cap==len, so a caller appending to a row
		// reallocates instead of overwriting its neighbour in the flat
		// backing array.
		row := flat[i*len(cols) : (i+1)*len(cols) : (i+1)*len(cols)]
		for j, c := range cols {
			if f, ok := t.cols[c].float(i); ok {
				row[j] = f
			} else {
				row[j] = def
			}
		}
		out[i] = row
	}
	return out
}

// MatrixFlat is Matrix without the row headers: the same cells in one
// contiguous row-major buffer of NumRows()×len(cols) values (row i's
// attributes at [i*len(cols), (i+1)*len(cols))). It is the SoA layout the
// partitioning kernels scan — one allocation, stride access, no per-row
// pointer chasing. The fill runs column by column so all-number columns copy
// straight out of their typed buffers.
func (t *Table) MatrixFlat(cols []int, def float64) []float64 {
	d := len(cols)
	flat := make([]float64, t.nrows*d)
	for j, ci := range cols {
		c := t.cols[ci]
		if c.kind == Number && c.nulls == nil && c.spans == nil {
			num := c.num[:t.nrows]
			for i, v := range num {
				flat[i*d+j] = v
			}
			continue
		}
		for i := 0; i < t.nrows; i++ {
			if f, ok := c.float(i); ok {
				flat[i*d+j] = f
			} else {
				flat[i*d+j] = def
			}
		}
	}
	return flat
}

// SuppressColumn nulls out an entire column — how the paper removes the
// sensitive attribute from a release while keeping the column in the schema.
// The old buffers are dropped, not rewritten, so suppression is O(rows/64)
// regardless of column content and never touches storage shared with other
// tables.
func (t *Table) SuppressColumn(col int) {
	old := t.cols[col]
	t.cols[col] = allNullCol(old.kind, t.nrows)
	old.refs.Add(-1)
}

// WithSuppressed returns a view of the table with the given columns
// suppressed and every other column buffer shared — the zero-copy release
// projection (anonymize, then hide the sensitive attribute).
func (t *Table) WithSuppressed(cols ...int) *Table {
	out := t.Clone()
	for _, c := range cols {
		out.SuppressColumn(c)
	}
	return out
}

// WithColumnFloats returns a view of the table whose col holds the given
// numeric values (one per row) and whose other column buffers are shared —
// how the fusion layer materializes P̂ without copying the release.
func (t *Table) WithColumnFloats(col int, vals []float64) (*Table, error) {
	if t.schema.Column(col).Kind != Number {
		return nil, fmt.Errorf("%w: column %q (%s) cannot hold number cells",
			ErrKindMismatch, t.schema.Column(col).Name, t.schema.Column(col).Kind)
	}
	if len(vals) != t.nrows {
		return nil, fmt.Errorf("%w: %d values for %d rows", ErrRowWidth, len(vals), t.nrows)
	}
	out := t.Clone()
	nc := newColData(Number)
	nc.n = t.nrows
	nc.num = append([]float64(nil), vals...)
	out.cols[col].refs.Add(-1)
	out.cols[col] = nc
	return out, nil
}

// Equal reports whether two tables have equal schemas and cellwise-equal rows.
func (t *Table) Equal(u *Table) bool {
	if !t.schema.Equal(u.schema) || t.nrows != u.nrows {
		return false
	}
	for j := range t.cols {
		a, b := t.cols[j], u.cols[j]
		if a == b {
			continue // shared storage is equal by construction
		}
		for i := 0; i < t.nrows; i++ {
			if !a.value(i).Equal(b.value(i)) {
				return false
			}
		}
	}
	return true
}

// GroupBy partitions row indices by the rendered values of the given columns.
// It is the equivalence-class computation used by k-anonymity checks and the
// discernibility metric: rows with identical (generalized) cells in cols fall
// in one group. Group order is deterministic (lexicographic by key).
func (t *Table) GroupBy(cols []int) [][]int {
	groups := make(map[string][]int)
	var keys []string
	var b strings.Builder
	for i := 0; i < t.nrows; i++ {
		b.Reset()
		for _, c := range cols {
			b.WriteString(t.cols[c].value(i).String())
			b.WriteByte('\x1f')
		}
		k := b.String()
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], i)
	}
	sort.Strings(keys)
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, groups[k])
	}
	return out
}

// String renders the table in the aligned plain-text style of the paper's
// tables, suitable for examples and CLI output.
func (t *Table) String() string {
	widths := make([]int, t.schema.Len())
	header := t.schema.Names()
	for i, h := range header {
		widths[i] = len(h)
	}
	rendered := make([][]string, t.nrows)
	for i := range rendered {
		cells := make([]string, len(t.cols))
		for j, c := range t.cols {
			cells[j] = c.value(i).String()
			if len(cells[j]) > widths[j] {
				widths[j] = len(cells[j])
			}
		}
		rendered[i] = cells
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for j, c := range cells {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[j]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, cells := range rendered {
		writeRow(cells)
	}
	return b.String()
}
