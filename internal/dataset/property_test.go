package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// TestCSVRoundTripProperty: randomly generated tables survive CSV
// serialization exactly — the contract the CLI pipeline rests on.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(names []string, nums []float64, spans []uint8, nulls []bool) bool {
		n := len(names)
		clip := func(m int) int {
			if n > m {
				return m
			}
			return n
		}
		n = clip(8)
		if n == 0 {
			return true
		}
		tb := New(MustSchema(
			Column{Name: "Name", Class: Identifier, Kind: Text},
			Column{Name: "Q", Class: QuasiIdentifier, Kind: Number},
		))
		for i := 0; i < n; i++ {
			var q Value
			switch {
			case i < len(nulls) && nulls[i]:
				q = NullValue()
			case i < len(spans) && spans[i]%2 == 0:
				lo := float64(spans[i])
				q = Span(lo, lo+float64(i)+1)
			case i < len(nums) && !math.IsNaN(nums[i]) && !math.IsInf(nums[i], 0):
				q = Num(nums[i])
			default:
				q = Num(float64(i))
			}
			// Arbitrary text cells: strip NUL and newlines the CSV layer is
			// not required to preserve byte-exactly inside quotes; the Value
			// layer renders them as-is, so restrict to printable runes.
			name := sanitize(names[i])
			if err := tb.AppendRow([]Value{Str(name), q}); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tb); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return got.Equal(tb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// sanitize keeps letters, digits and spaces; anything else becomes '_'. A
// leading/lone numeric string is prefixed so it round-trips as text... it
// already does (declared-kind coercion), so only control characters matter.
func sanitize(s string) string {
	if len(s) > 12 {
		s = s[:12]
	}
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == ' ':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	// Blank text decodes as a suppressed cell ("'' ≡ '*'") and surrounding
	// whitespace is trimmed by ParseValue, so the round-trip property holds
	// for trimmed non-blank names only.
	trimmed := strings.TrimSpace(string(out))
	if trimmed == "" {
		return "x"
	}
	return trimmed
}

// TestGroupByPartitionProperty: GroupBy always partitions the row set.
func TestGroupByPartitionProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) > 30 {
			vals = vals[:30]
		}
		tb := New(MustSchema(
			Column{Name: "Q", Class: QuasiIdentifier, Kind: Number},
		))
		for _, v := range vals {
			tb.MustAppendRow(Num(float64(v % 5)))
		}
		groups := tb.GroupBy([]int{0})
		seen := make(map[int]bool)
		for _, g := range groups {
			for _, i := range g {
				if seen[i] {
					return false
				}
				seen[i] = true
			}
			// All members share the rendered value.
			for _, i := range g[1:] {
				if tb.Cell(i, 0).String() != tb.Cell(g[0], 0).String() {
					return false
				}
			}
		}
		return len(seen) == tb.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSummarizeInvariantsProperty: nulls+numeric readings never exceed the
// row count, and min ≤ mean ≤ max on numeric columns.
func TestSummarizeInvariantsProperty(t *testing.T) {
	f := func(vals []int16, nulls []bool) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 25 {
			vals = vals[:25]
		}
		tb := New(MustSchema(
			Column{Name: "Q", Class: QuasiIdentifier, Kind: Number},
		))
		for i, v := range vals {
			if i < len(nulls) && nulls[i] {
				tb.MustAppendRow(NullValue())
			} else {
				tb.MustAppendRow(Num(float64(v)))
			}
		}
		s := Summarize(tb)[0]
		if s.Nulls > tb.NumRows() || s.Distinct > tb.NumRows() {
			return false
		}
		if s.Nulls < tb.NumRows() {
			return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
