package dataset

import (
	"bytes"
	"testing"
)

// FuzzReadSnapshot drives arbitrary bytes through the snapshot decoder. The
// invariants under fuzzing:
//
//   - ReadSnapshot never panics, whatever the input;
//   - it either returns a coherent table or an error, never both;
//   - allocation is bounded by the bytes actually present (the chunked
//     reads in snapReader), so a corrupt header claiming 2^40 rows or a
//     gigabyte string dies with a read error, not an OOM;
//   - an accepted table is fully usable: it re-serializes, and the second
//     round-trip preserves the canonical fingerprint bit for bit — the
//     property the content-addressed disk store keys on.
//
// Seeds cover every storage feature (numbers, intervals, null/span bitmaps,
// dictionary text, suppressed bufferless columns) plus truncations and
// header corruptions of a valid snapshot, giving the mutator real
// structure to start from. CI runs a short `-fuzz -fuzztime=10s` smoke on
// top of the seed-corpus pass `go test` always does.
func FuzzReadSnapshot(f *testing.F) {
	seedTables := []*Table{}

	s1 := MustSchema(
		Column{Name: "Name", Class: Identifier, Kind: Text},
		Column{Name: "Dept", Class: QuasiIdentifier, Kind: Text},
		Column{Name: "Age", Class: QuasiIdentifier, Kind: Number},
		Column{Name: "Income", Class: Sensitive, Kind: Number},
	)
	t1 := New(s1)
	t1.MustAppendRow(Str("Alice"), Str("CS"), Num(28), Num(91250))
	t1.MustAppendRow(Str("Bob"), Str("EE"), Span(25, 30), Num(60125.5))
	t1.MustAppendRow(Str("Carol"), Str("CS"), NullValue(), Num(123456.75))
	t1.MustAppendRow(Str("Dave"), NullValue(), Span(40, 45), Num(71000))
	seedTables = append(seedTables, t1, t1.WithSuppressed(3))

	s2 := MustSchema(Column{Name: "X", Class: QuasiIdentifier, Kind: Number})
	t2 := New(s2)
	t2.MustAppendRow(Num(1.5))
	seedTables = append(seedTables, t2)

	var valid []byte
	for _, tab := range seedTables {
		var buf bytes.Buffer
		if err := tab.WriteSnapshot(&buf); err != nil {
			f.Fatal(err)
		}
		valid = buf.Bytes()
		f.Add(buf.Bytes())
	}
	// Structured corruption seeds: empty, truncations, a flipped header
	// byte, a flipped payload byte (CRC must catch it), and an absurd row
	// count spliced into the shape field.
	f.Add([]byte{})
	f.Add(valid[:8])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	flipped := bytes.Clone(valid)
	flipped[3] ^= 0xff
	f.Add(flipped)
	payload := bytes.Clone(valid)
	payload[len(payload)/2] ^= 0x01
	f.Add(payload)
	huge := bytes.Clone(valid)
	copy(huge[24:32], []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00}) // nrows ≈ 2^40
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			if tab != nil {
				t.Fatal("ReadSnapshot returned both a table and an error")
			}
			return
		}
		if tab == nil {
			t.Fatal("ReadSnapshot returned neither a table nor an error")
		}
		// Accepted input: the table must be coherent enough to re-serialize
		// and to survive a second round-trip with an identical fingerprint.
		var out bytes.Buffer
		if err := tab.WriteSnapshot(&out); err != nil {
			t.Fatalf("accepted table does not re-serialize: %v", err)
		}
		back, err := ReadSnapshot(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-serialized snapshot does not decode: %v", err)
		}
		var fp1, fp2 bytes.Buffer
		if err := tab.WriteFingerprint(&fp1); err != nil {
			t.Fatalf("accepted table does not fingerprint: %v", err)
		}
		if err := back.WriteFingerprint(&fp2); err != nil {
			t.Fatalf("round-tripped table does not fingerprint: %v", err)
		}
		if !bytes.Equal(fp1.Bytes(), fp2.Bytes()) {
			t.Fatal("fingerprint changed across the round-trip")
		}
	})
}
