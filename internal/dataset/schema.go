package dataset

import (
	"errors"
	"fmt"
	"strings"
)

// AttrClass is the paper's three-way attribute classification (Section 1).
type AttrClass int

const (
	// Identifier attributes carry explicit identifiers (Name, SSN). In the
	// enterprise setting they are retained in the release.
	Identifier AttrClass = iota
	// QuasiIdentifier attributes could indirectly identify individuals
	// (Age, Zipcode) and are the ones generalized by anonymizers.
	QuasiIdentifier
	// Sensitive attributes carry the information to protect (Income).
	Sensitive
)

// String returns the class name.
func (c AttrClass) String() string {
	switch c {
	case Identifier:
		return "identifier"
	case QuasiIdentifier:
		return "quasi-identifier"
	case Sensitive:
		return "sensitive"
	default:
		return fmt.Sprintf("AttrClass(%d)", int(c))
	}
}

// ParseAttrClass parses the String form (case-insensitive; also accepts the
// short forms "id", "qi", "s").
func ParseAttrClass(s string) (AttrClass, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "identifier", "id":
		return Identifier, nil
	case "quasi-identifier", "quasi", "qi":
		return QuasiIdentifier, nil
	case "sensitive", "s":
		return Sensitive, nil
	default:
		return 0, fmt.Errorf("dataset: unknown attribute class %q", s)
	}
}

// Column describes one attribute.
type Column struct {
	Name  string
	Class AttrClass
	// Kind is the expected cell kind for the column (Number or Text).
	// Interval and Null cells are accepted in Number columns, since
	// anonymization rewrites numbers into intervals or suppresses them.
	Kind ValueKind
}

// Schema is an ordered attribute list. The zero Schema is empty.
type Schema struct {
	cols  []Column
	index map[string]int
}

// ErrNoColumn is returned when a named column does not exist.
var ErrNoColumn = errors.New("dataset: no such column")

// NewSchema builds a schema from columns. Column names must be unique and
// non-empty.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: make([]Column, len(cols)), index: make(map[string]int, len(cols))}
	copy(s.cols, cols)
	for i, c := range s.cols {
		if c.Name == "" {
			return nil, fmt.Errorf("dataset: column %d has empty name", i)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate column name %q", c.Name)
		}
		if c.Kind != Number && c.Kind != Text {
			return nil, fmt.Errorf("dataset: column %q: declared kind must be number or text, got %s", c.Name, c.Kind)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for statically known schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Column returns the i'th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of all columns.
func (s *Schema) Columns() []Column {
	out := make([]Column, len(s.cols))
	copy(out, s.cols)
	return out
}

// Lookup returns the index of the named column.
func (s *Schema) Lookup(name string) (int, error) {
	if i, ok := s.index[name]; ok {
		return i, nil
	}
	return 0, fmt.Errorf("%w: %q", ErrNoColumn, name)
}

// MustLookup is Lookup that panics on error.
func (s *Schema) MustLookup(name string) int {
	i, err := s.Lookup(name)
	if err != nil {
		panic(err)
	}
	return i
}

// Has reports whether the named column exists.
func (s *Schema) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// IndicesOf returns the column indices having the given class, in schema
// order. This is how anonymizers find the quasi-identifiers and attackers
// find the identifiers.
func (s *Schema) IndicesOf(class AttrClass) []int {
	var out []int
	for i, c := range s.cols {
		if c.Class == class {
			out = append(out, i)
		}
	}
	return out
}

// NamesOf returns the column names having the given class, in schema order.
func (s *Schema) NamesOf(class AttrClass) []string {
	var out []string
	for _, c := range s.cols {
		if c.Class == class {
			out = append(out, c.Name)
		}
	}
	return out
}

// Names returns all column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// Equal reports whether two schemas have identical columns in order.
func (s *Schema) Equal(t *Schema) bool {
	if s.Len() != t.Len() {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != t.cols[i] {
			return false
		}
	}
	return true
}

// Project returns a new schema containing only the named columns, in the
// given order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i, err := s.Lookup(n)
		if err != nil {
			return nil, err
		}
		cols = append(cols, s.cols[i])
	}
	return NewSchema(cols...)
}

// WithClass returns a copy of the schema with the named column reclassified.
func (s *Schema) WithClass(name string, class AttrClass) (*Schema, error) {
	i, err := s.Lookup(name)
	if err != nil {
		return nil, err
	}
	cols := s.Columns()
	cols[i].Class = class
	return NewSchema(cols...)
}

// accepts reports whether a cell may be stored in column c. Null is always
// acceptable (suppression); intervals are acceptable in numeric columns.
func (c Column) accepts(v Value) bool {
	switch v.Kind() {
	case Null:
		return true
	case Number, Interval:
		return c.Kind == Number
	case Text:
		return c.Kind == Text
	default:
		return false
	}
}
