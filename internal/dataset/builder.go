package dataset

import (
	"fmt"
	"strings"
)

// builderChunkRows is the fixed chunk height of Builder ingest. It is a
// multiple of 64 so chunk boundaries are bitset-word-aligned and chunk
// bitmaps concatenate with word copies.
const builderChunkRows = 8192

// Builder decodes rows (CSV fields, upload records, generator output)
// directly into columnar storage. Unlike appending to a Table — whose column
// buffers grow geometrically, holding up to 2× the final footprint and
// copying every value O(log n) times — the builder accumulates fixed-size
// column chunks and materializes exact-size buffers once, when Table is
// called. Peak transient overhead is bounded by one column's chunks plus its
// final buffer, whatever the row count, which is what lets a 10⁶-row cohort
// load without full intermediate materialization.
//
// Each chunk is itself a colData, so cell encoding (lazy interval/null
// buffers, dictionary interning) is exactly the single-buffer path's; the
// text dictionary is shared across a column's chunks and handed to the final
// column intact.
type Builder struct {
	schema  *Schema
	nrows   int
	cols    []builderCol
	scratch []Value
}

// builderCol accumulates one column's chunks. cur aliases the last chunk.
type builderCol struct {
	chunks []*colData
	cur    *colData
}

// NewBuilder returns a builder for an empty table with the given schema.
func NewBuilder(schema *Schema) *Builder {
	return &Builder{
		schema:  schema,
		cols:    make([]builderCol, schema.Len()),
		scratch: make([]Value, schema.Len()),
	}
}

// NumRows returns the number of rows appended so far.
func (b *Builder) NumRows() int { return b.nrows }

// AppendRow validates and appends one row of cells. The slice is not
// retained. Validation covers the whole row before any cell is written, so a
// failed row leaves the builder unchanged.
func (b *Builder) AppendRow(row []Value) error {
	if len(row) != b.schema.Len() {
		return fmt.Errorf("%w: got %d cells, want %d", ErrRowWidth, len(row), b.schema.Len())
	}
	for j, v := range row {
		if !b.schema.Column(j).accepts(v) {
			return fmt.Errorf("%w: column %q (%s) cannot hold %s cell",
				ErrKindMismatch, b.schema.Column(j).Name, b.schema.Column(j).Kind, v.Kind())
		}
	}
	for j, v := range row {
		c := &b.cols[j]
		if c.cur == nil || c.cur.n == builderChunkRows {
			next := newColData(b.schema.Column(j).Kind)
			if c.cur != nil && c.cur.dict != nil {
				// One dictionary per column, shared across its chunks: ids stay
				// consistent and the final column adopts it without remapping.
				next.dict = c.cur.dict
			}
			c.chunks = append(c.chunks, next)
			c.cur = next
		}
		c.cur.appendValue(v)
	}
	b.nrows++
	return nil
}

// AppendRecord parses and appends one string record. Fields use the
// Value.String encoding; plain tokens in declared-text columns stay text even
// when they look numeric (e.g. a numeric employee code used as an
// identifier).
func (b *Builder) AppendRecord(fields []string) error {
	if len(fields) != b.schema.Len() {
		return fmt.Errorf("%w: got %d fields, want %d", ErrRowWidth, len(fields), b.schema.Len())
	}
	for j, s := range fields {
		v, err := ParseValue(s)
		if err != nil {
			return fmt.Errorf("column %q: %w", b.schema.Column(j).Name, err)
		}
		if b.schema.Column(j).Kind == Text && v.Kind() == Number {
			v = Str(strings.TrimSpace(s))
		}
		b.scratch[j] = v
	}
	return b.AppendRow(b.scratch)
}

// Table materializes the built table. Chunks are released column by column
// as their final buffer is assembled, bounding peak memory; the builder must
// not be used afterwards.
func (b *Builder) Table() *Table {
	cols := make([]*colData, b.schema.Len())
	for j := range b.cols {
		cols[j] = materializeChunks(b.schema.Column(j).Kind, b.nrows, b.cols[j].chunks)
		b.cols[j].chunks, b.cols[j].cur = nil, nil
	}
	return &Table{schema: b.schema, nrows: b.nrows, cols: cols}
}

// materializeChunks concatenates a column's chunks into one exact-size
// colData, nilling out each chunk as soon as it is copied.
func materializeChunks(kind ValueKind, n int, chunks []*colData) *colData {
	out := newColData(kind)
	out.n = n
	if n == 0 {
		return out
	}
	var hasNulls, hasSpans, hasNum, hasHi, hasIds bool
	for _, c := range chunks {
		hasNulls = hasNulls || c.nulls != nil
		hasSpans = hasSpans || c.spans != nil
		hasNum = hasNum || c.num != nil
		hasHi = hasHi || c.hi != nil
		if c.ids != nil {
			hasIds = true
			out.dict = c.dict // shared across chunks; adopt as-is
		}
	}
	words := (n + 63) / 64
	if hasNulls {
		out.nulls = make(bitset, words)
	}
	if hasSpans {
		out.spans = make(bitset, words)
	}
	if hasNum {
		out.num = make([]float64, n)
	}
	if hasHi {
		out.hi = make([]float64, n)
	}
	if hasIds {
		out.ids = make([]int32, n)
	}
	base := 0
	for ci, c := range chunks {
		if out.num != nil && c.num != nil {
			copy(out.num[base:], c.num[:c.n])
		}
		if out.hi != nil {
			if c.hi != nil {
				copy(out.hi[base:], c.hi[:c.n])
			} else if c.num != nil {
				// Chunks without interval cells keep hi == num, the invariant
				// readers of materialized hi buffers rely on.
				copy(out.hi[base:], c.num[:c.n])
			}
		}
		if out.ids != nil && c.ids != nil {
			copy(out.ids[base:], c.ids[:c.n])
		}
		// base is a multiple of builderChunkRows, hence word-aligned: chunk
		// bitmaps concatenate with word copies.
		if c.nulls != nil {
			copy(out.nulls[base>>6:], c.nulls)
		}
		if c.spans != nil {
			copy(out.spans[base>>6:], c.spans)
		}
		base += c.n
		chunks[ci] = nil
	}
	return out
}
