package dataset

import (
	"fmt"
	"math"
	"testing"
)

// buildRows appends n generated rows through fn to both a chunked Builder and
// a plain Table and checks the two materializations are cellwise equal —
// chunked ingest must be invisible to readers.
func buildRows(t *testing.T, schema *Schema, n int, fn func(i int) []Value) *Table {
	t.Helper()
	b := NewBuilder(schema)
	direct := New(schema)
	for i := 0; i < n; i++ {
		row := fn(i)
		if err := b.AppendRow(row); err != nil {
			t.Fatalf("builder row %d: %v", i, err)
		}
		if err := direct.AppendRow(row); err != nil {
			t.Fatalf("direct row %d: %v", i, err)
		}
	}
	got := b.Table()
	if got.NumRows() != n {
		t.Fatalf("built table has %d rows, want %d", got.NumRows(), n)
	}
	if !got.Equal(direct) {
		t.Fatalf("chunked build differs from direct build at n=%d", n)
	}
	return got
}

func builderTestSchema() *Schema {
	return MustSchema(
		Column{Name: "Name", Class: Identifier, Kind: Text},
		Column{Name: "Score", Class: QuasiIdentifier, Kind: Number},
		Column{Name: "Income", Class: Sensitive, Kind: Number},
	)
}

// TestBuilderChunkBoundaries exercises row counts straddling the chunk size,
// with nulls, intervals and repeated dictionary strings crossing chunk
// boundaries.
func TestBuilderChunkBoundaries(t *testing.T) {
	schema := builderTestSchema()
	for _, n := range []int{0, 1, builderChunkRows - 1, builderChunkRows, builderChunkRows + 1, 3*builderChunkRows + 17} {
		got := buildRows(t, schema, n, func(i int) []Value {
			name := Str(fmt.Sprintf("person-%d", i%1000)) // repeats across chunks
			score := Value(Num(float64(i) / 3))
			switch i % 7 {
			case 3:
				score = NullValue()
			case 5:
				score = Span(float64(i), float64(i+10))
			}
			return []Value{name, score, Num(40000 + float64(i))}
		})
		// Spot-check cell reconstruction across a chunk boundary.
		if n > builderChunkRows {
			i := builderChunkRows
			if s, _ := got.Cell(i, 0).Text(); s != fmt.Sprintf("person-%d", i%1000) {
				t.Fatalf("n=%d: row %d name = %q", n, i, s)
			}
		}
	}
}

// TestBuilderAllNullLeadingChunk covers a column whose first whole chunk is
// null before the first real value arrives — the lazy-buffer backfill case.
func TestBuilderAllNullLeadingChunk(t *testing.T) {
	schema := builderTestSchema()
	n := builderChunkRows + 100
	buildRows(t, schema, n, func(i int) []Value {
		if i < builderChunkRows {
			return []Value{NullValue(), NullValue(), Num(float64(i))}
		}
		return []Value{Str("late"), Num(float64(i)), Num(float64(i))}
	})
}

// TestBuilderRejectsBadRows checks validation happens before any write.
func TestBuilderRejectsBadRows(t *testing.T) {
	b := NewBuilder(builderTestSchema())
	if err := b.AppendRow([]Value{Str("x"), Num(1)}); err == nil {
		t.Fatal("short row must fail")
	}
	if err := b.AppendRow([]Value{Num(3), Num(1), Num(2)}); err == nil {
		t.Fatal("number in text column must fail")
	}
	if b.NumRows() != 0 {
		t.Fatalf("failed rows must not be counted, got %d", b.NumRows())
	}
	if err := b.AppendRecord([]string{"ok", "1.5", "70000"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendRecord([]string{"bad", "not-a-number", "70000"}); err == nil {
		t.Fatal("unparsable numeric field must fail")
	}
	got := b.Table()
	if got.NumRows() != 1 {
		t.Fatalf("table has %d rows, want 1", got.NumRows())
	}
}

// TestMatrixFlatMatchesMatrix pins MatrixFlat to the row-major Matrix layout
// bit for bit, including interval midpoints and suppressed-cell defaults.
func TestMatrixFlatMatchesMatrix(t *testing.T) {
	schema := MustSchema(
		Column{Name: "A", Class: QuasiIdentifier, Kind: Number},
		Column{Name: "B", Class: QuasiIdentifier, Kind: Number},
	)
	tb := New(schema)
	tb.MustAppendRow(Num(1.25), Num(-3))
	tb.MustAppendRow(Span(2, 5), Num(0.1))
	tb.MustAppendRow(NullValue(), Span(-1, 1))
	tb.MustAppendRow(Num(7), NullValue())
	cols := []int{0, 1}
	const def = 42.5
	want := tb.Matrix(cols, def)
	got := tb.MatrixFlat(cols, def)
	if len(got) != tb.NumRows()*len(cols) {
		t.Fatalf("flat length %d, want %d", len(got), tb.NumRows()*len(cols))
	}
	for i, row := range want {
		for j, v := range row {
			if g := got[i*len(cols)+j]; math.Float64bits(g) != math.Float64bits(v) {
				t.Fatalf("cell (%d,%d): flat %v, matrix %v", i, j, g, v)
			}
		}
	}
}
