package dataset

import (
	"math"
	"math/rand"
	"testing"
)

// samePartition checks that the Grouper's (ids, sizes) describe exactly the
// partition GroupBy computes, up to class numbering.
func samePartition(t *testing.T, tb *Table, cols []int, ids []int32, sizes []int32) {
	t.Helper()
	groups := tb.GroupBy(cols)
	if len(groups) != len(sizes) {
		t.Fatalf("grouper found %d classes, GroupBy %d", len(sizes), len(groups))
	}
	// Map each GroupBy group to the grouper class of its first row and demand
	// the mapping is a bijection consistent with every row.
	toClass := make(map[int]int32)
	seen := make(map[int32]bool)
	for gi, rows := range groups {
		c := ids[rows[0]]
		if seen[c] {
			t.Fatalf("grouper class %d matches two GroupBy groups", c)
		}
		seen[c] = true
		toClass[gi] = c
		if int(sizes[c]) != len(rows) {
			t.Fatalf("class %d sized %d, GroupBy group has %d rows", c, sizes[c], len(rows))
		}
		for _, r := range rows {
			if ids[r] != c {
				t.Fatalf("row %d in class %d, groupmates in %d", r, ids[r], c)
			}
		}
	}
}

func grouperSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "a", Class: QuasiIdentifier, Kind: Number},
		Column{Name: "b", Class: QuasiIdentifier, Kind: Number},
		Column{Name: "c", Class: QuasiIdentifier, Kind: Text},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestGrouperMatchesGroupBy drives randomized tables mixing plain numbers,
// intervals, text, nulls and the tricky renderings (NaN, ±0, degenerate
// intervals, literal "*" text) through both partitioners.
func TestGrouperMatchesGroupBy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var g Grouper
	nums := []float64{0, math.Copysign(0, -1), 1, 1.5, math.NaN(), 42}
	texts := []string{"x", "y", "*", "z"}
	for trial := 0; trial < 60; trial++ {
		tb := New(grouperSchema(t))
		n := 1 + rng.Intn(120)
		for i := 0; i < n; i++ {
			row := make([]Value, 3)
			for j := 0; j < 2; j++ {
				switch rng.Intn(4) {
				case 0:
					row[j] = NullValue()
				case 1:
					lo := nums[rng.Intn(len(nums))]
					row[j] = Span(lo, lo+float64(rng.Intn(2)))
				default:
					row[j] = Num(nums[rng.Intn(len(nums))])
				}
			}
			if rng.Intn(5) == 0 {
				row[2] = NullValue()
			} else {
				row[2] = Str(texts[rng.Intn(len(texts))])
			}
			if err := tb.AppendRow(row); err != nil {
				t.Fatal(err)
			}
		}
		for _, cols := range [][]int{{0}, {2}, {0, 1}, {0, 1, 2}} {
			ids, sizes := g.Classes(tb, cols)
			samePartition(t, tb, cols, ids, sizes)
		}
	}
}

// TestGrouperSuppressedColumn covers the allNullCol storage (nil buffers).
func TestGrouperSuppressedColumn(t *testing.T) {
	tb := New(grouperSchema(t))
	tb.MustAppendRow(Num(1), Num(2), Str("x"))
	tb.MustAppendRow(Num(1), Num(3), Str("y"))
	tb.SuppressColumn(0)
	var g Grouper
	ids, sizes := g.Classes(tb, []int{0})
	if len(sizes) != 1 || sizes[0] != 2 || ids[0] != ids[1] {
		t.Fatalf("suppressed column should form one class, got ids=%v sizes=%v", ids, sizes)
	}
	samePartition(t, tb, []int{0}, ids, sizes)
}

// TestGrouperReuse proves warm calls reuse the returned buffers.
func TestGrouperReuse(t *testing.T) {
	tb := New(grouperSchema(t))
	for i := 0; i < 512; i++ {
		tb.MustAppendRow(Num(float64(i%7)), Num(float64(i%3)), Str("t"))
	}
	var g Grouper
	cols := []int{0, 1}
	g.Classes(tb, cols) // warm-up
	allocs := testing.AllocsPerRun(20, func() {
		g.Classes(tb, cols)
	})
	if allocs > 0 {
		t.Fatalf("warm Classes allocates %g times per run, want 0", allocs)
	}
}
