package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// This file implements the durable on-disk form of a Table: a versioned
// binary columnar snapshot. Unlike WriteFingerprint — which renders every
// cell through a canonical per-cell tag stream for hashing — the snapshot
// serializes the typed column buffers themselves (float values, packed
// interval upper bounds, span and null bitmaps, the text dictionary and its
// id vector), so writing and reading are straight buffer copies and the
// reconstructed table is storage-identical to the original: its
// WriteFingerprint stream is bit-for-bit the same. A CRC-32 trailer detects
// torn or corrupted files; ReadSnapshot never returns a table from a stream
// whose checksum does not verify.
//
// Layout (all integers little-endian):
//
//	u64 magic        0xC01A51A9
//	u64 version      1
//	u64 ncols, u64 nrows
//	ncols × { u64 name-len, name bytes, u8 class, u8 kind }
//	ncols × column storage:
//	    u8  flags    bit0 nulls, bit1 spans, bit2 num, bit3 hi, bit4 text
//	    [nulls]  u64 nwords, nwords × u64
//	    [spans]  u64 nwords, nwords × u64
//	    [num]    nrows × u64 float bits
//	    [hi]     nrows × u64 float bits
//	    [text]   u64 nstrs, nstrs × { u64 len, bytes }, nrows × u32 id
//	u32 crc32(IEEE) of everything above
const (
	snapshotMagic   = 0xC01A51A9
	snapshotVersion = 1
)

const (
	snapHasNulls byte = 1 << iota
	snapHasSpans
	snapHasNum
	snapHasHi
	snapHasText
)

// WriteSnapshot writes the table as a versioned binary columnar snapshot.
// The stream round-trips through ReadSnapshot into a table whose canonical
// fingerprint (WriteFingerprint) is bit-identical to the receiver's.
func (t *Table) WriteSnapshot(w io.Writer) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	sw := &snapWriter{w: bw}
	sw.u64(snapshotMagic)
	sw.u64(snapshotVersion)
	sw.u64(uint64(t.schema.Len()))
	sw.u64(uint64(t.nrows))
	for i := 0; i < t.schema.Len(); i++ {
		c := t.schema.Column(i)
		sw.str(c.Name)
		sw.byte(byte(c.Class))
		sw.byte(byte(c.Kind))
	}
	for _, c := range t.cols {
		sw.column(c, t.nrows)
	}
	if sw.err != nil {
		return fmt.Errorf("dataset: write snapshot: %w", sw.err)
	}
	// Flush the payload into the CRC before sealing the trailer, then write
	// the checksum directly (it must not hash itself).
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("dataset: write snapshot: %w", err)
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("dataset: write snapshot: %w", err)
	}
	return nil
}

type snapWriter struct {
	w   *bufio.Writer
	err error
}

func (s *snapWriter) byte(b byte) {
	if s.err == nil {
		s.err = s.w.WriteByte(b)
	}
}

func (s *snapWriter) u64(v uint64) {
	if s.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, s.err = s.w.Write(buf[:])
}

func (s *snapWriter) u32(v uint32) {
	if s.err != nil {
		return
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, s.err = s.w.Write(buf[:])
}

func (s *snapWriter) str(v string) {
	s.u64(uint64(len(v)))
	if s.err == nil {
		_, s.err = s.w.WriteString(v)
	}
}

func (s *snapWriter) words(b bitset) {
	s.u64(uint64(len(b)))
	for _, w := range b {
		s.u64(w)
	}
}

func (s *snapWriter) floats(fs []float64) {
	for _, f := range fs {
		s.u64(math.Float64bits(f))
	}
}

func (s *snapWriter) column(c *colData, nrows int) {
	var flags byte
	if c.nulls != nil {
		flags |= snapHasNulls
	}
	if c.spans != nil {
		flags |= snapHasSpans
	}
	if c.num != nil {
		flags |= snapHasNum
	}
	if c.hi != nil {
		flags |= snapHasHi
	}
	if c.ids != nil {
		flags |= snapHasText
	}
	s.byte(flags)
	if c.nulls != nil {
		s.words(c.nulls)
	}
	if c.spans != nil {
		s.words(c.spans)
	}
	if c.num != nil {
		s.floats(c.num[:nrows])
	}
	if c.hi != nil {
		s.floats(c.hi[:nrows])
	}
	if c.ids != nil {
		s.u64(uint64(len(c.dict.strs)))
		for _, str := range c.dict.strs {
			s.str(str)
		}
		for _, id := range c.ids[:nrows] {
			s.u32(uint32(id))
		}
	}
}

// ReadSnapshot reads a table previously written by WriteSnapshot, verifying
// the trailing checksum. The reconstructed table reuses the snapshot's
// column buffers directly, so its canonical fingerprint matches the written
// table bit for bit.
func ReadSnapshot(r io.Reader) (*Table, error) {
	sr := &snapReader{r: bufio.NewReader(r), crc: crc32.NewIEEE()}
	if magic := sr.u64(); sr.err == nil && magic != snapshotMagic {
		return nil, fmt.Errorf("dataset: read snapshot: bad magic %#x", magic)
	}
	if version := sr.u64(); sr.err == nil && version != snapshotVersion {
		return nil, fmt.Errorf("dataset: read snapshot: unsupported version %d", version)
	}
	ncols := sr.u64()
	nrows := sr.u64()
	if sr.err == nil && (ncols > 1<<20 || nrows > 1<<40) {
		return nil, fmt.Errorf("dataset: read snapshot: implausible shape %d×%d", nrows, ncols)
	}
	cols := make([]Column, 0, min(ncols, snapAllocChunk))
	for i := uint64(0); i < ncols && sr.err == nil; i++ {
		name := sr.str()
		class := AttrClass(sr.byte())
		kind := ValueKind(sr.byte())
		if sr.err == nil && (class < Identifier || class > Sensitive) {
			return nil, fmt.Errorf("dataset: read snapshot: column %q: bad class %d", name, class)
		}
		cols = append(cols, Column{Name: name, Class: class, Kind: kind})
	}
	if sr.err != nil {
		return nil, fmt.Errorf("dataset: read snapshot: %w", sr.err)
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, fmt.Errorf("dataset: read snapshot: %w", err)
	}
	t := &Table{schema: schema, nrows: int(nrows)}
	t.cols = make([]*colData, 0, min(ncols, snapAllocChunk))
	for i := uint64(0); i < ncols; i++ {
		c, err := sr.column(schema.Column(int(i)).Kind, int(nrows))
		if err != nil {
			return nil, fmt.Errorf("dataset: read snapshot: column %q: %w", schema.Column(int(i)).Name, err)
		}
		t.cols = append(t.cols, c)
	}
	// Everything consumed up to here is covered by the CRC; the trailer
	// itself is read without hashing.
	sum := sr.crc.Sum32()
	var trailer [4]byte
	if _, err := io.ReadFull(sr.r, trailer[:]); err != nil {
		return nil, fmt.Errorf("dataset: read snapshot: checksum trailer: %w", err)
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != sum {
		return nil, fmt.Errorf("dataset: read snapshot: checksum mismatch (stored %08x, computed %08x)", got, sum)
	}
	return t, nil
}

// snapReader hashes exactly the bytes it consumes (not the bufio
// read-ahead), so the running CRC at the trailer covers the payload alone.
type snapReader struct {
	r   *bufio.Reader
	crc hash.Hash32
	err error
}

// fill reads len(buf) payload bytes and feeds them into the checksum.
func (s *snapReader) fill(buf []byte) bool {
	if s.err != nil {
		return false
	}
	if _, err := io.ReadFull(s.r, buf); err != nil {
		s.err = err
		return false
	}
	s.crc.Write(buf)
	return true
}

func (s *snapReader) byte() byte {
	var buf [1]byte
	if !s.fill(buf[:]) {
		return 0
	}
	return buf[0]
}

func (s *snapReader) u64() uint64 {
	var buf [8]byte
	if !s.fill(buf[:]) {
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

func (s *snapReader) u32() uint32 {
	var buf [4]byte
	if !s.fill(buf[:]) {
		return 0
	}
	return binary.LittleEndian.Uint32(buf[:])
}

func (s *snapReader) str() string {
	n := s.u64()
	if s.err != nil {
		return ""
	}
	if n > 1<<30 {
		s.err = fmt.Errorf("implausible string length %d", n)
		return ""
	}
	// Grow by chunks as bytes actually arrive: a corrupt length header must
	// fail with a read error, not allocate a gigabyte before the stream
	// runs dry (see snapAllocChunk).
	tmp := make([]byte, min(n, snapAllocChunk))
	out := make([]byte, 0, len(tmp))
	for read := uint64(0); read < n; {
		c := min(n-read, snapAllocChunk)
		if !s.fill(tmp[:c]) {
			return ""
		}
		out = append(out, tmp[:c]...)
		read += c
	}
	return string(out)
}

// snapAllocChunk caps upfront allocation while decoding length-prefixed
// buffers: slices grow by append as bytes actually arrive, so a corrupt or
// truncated header claiming 2^40 rows fails with a read error once the
// stream runs dry instead of attempting a terabyte allocation before the
// checksum could ever be verified.
const snapAllocChunk = 1 << 16

func (s *snapReader) words(nrows int) (bitset, error) {
	n := s.u64()
	if s.err != nil {
		return nil, s.err
	}
	if max := uint64((nrows + 63) / 64); n > max {
		return nil, fmt.Errorf("bitmap has %d words for %d rows", n, nrows)
	}
	b := make(bitset, 0, min(n, snapAllocChunk))
	for i := uint64(0); i < n; i++ {
		w := s.u64()
		if s.err != nil {
			return nil, s.err
		}
		b = append(b, w)
	}
	return b, nil
}

func (s *snapReader) floats(nrows int) ([]float64, error) {
	fs := make([]float64, 0, min(nrows, snapAllocChunk))
	for i := 0; i < nrows; i++ {
		v := s.u64()
		if s.err != nil {
			return nil, s.err
		}
		fs = append(fs, math.Float64frombits(v))
	}
	return fs, nil
}

func (s *snapReader) column(kind ValueKind, nrows int) (*colData, error) {
	flags := s.byte()
	if s.err != nil {
		return nil, s.err
	}
	c := newColData(kind)
	c.n = nrows
	var err error
	if flags&snapHasNulls != 0 {
		if c.nulls, err = s.words(nrows); err != nil {
			return nil, err
		}
	}
	if flags&snapHasSpans != 0 {
		if c.spans, err = s.words(nrows); err != nil {
			return nil, err
		}
	}
	if flags&snapHasNum != 0 {
		if c.num, err = s.floats(nrows); err != nil {
			return nil, err
		}
	}
	if flags&snapHasHi != 0 {
		if c.hi, err = s.floats(nrows); err != nil {
			return nil, err
		}
	}
	if flags&snapHasText != 0 {
		nstrs := s.u64()
		if s.err != nil {
			return nil, s.err
		}
		if nstrs > 1<<32 {
			return nil, fmt.Errorf("implausible dictionary size %d", nstrs)
		}
		c.dict = newIntern()
		for i := uint64(0); i < nstrs; i++ {
			str := s.str()
			if s.err != nil {
				return nil, s.err
			}
			c.dict.idx[str] = int32(len(c.dict.strs))
			c.dict.strs = append(c.dict.strs, str)
		}
		c.ids = make([]int32, 0, min(nrows, snapAllocChunk))
		for i := 0; i < nrows; i++ {
			id := s.u32()
			if s.err != nil {
				return nil, s.err
			}
			if uint64(id) >= nstrs && !c.nulls.get(i) {
				return nil, fmt.Errorf("row %d: dictionary id %d out of range (%d entries)", i, id, nstrs)
			}
			c.ids = append(c.ids, int32(id))
		}
	}
	if s.err != nil {
		return nil, s.err
	}
	// A live text cell must have a dictionary to resolve against.
	if kind == Text && c.ids == nil {
		for i := 0; i < nrows; i++ {
			if !c.nulls.get(i) {
				return nil, fmt.Errorf("row %d: text cell without a dictionary", i)
			}
		}
	}
	return c, nil
}
