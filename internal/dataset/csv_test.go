package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	tb := tableI(t)
	// Mix in anonymized cells to exercise interval and null encodings.
	if err := tb.SetCell(0, 3, Span(20, 30)); err != nil {
		t.Fatal(err)
	}
	tb.SuppressColumn(5)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, tb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !got.Equal(tb) {
		t.Errorf("round trip mismatch:\nwant:\n%s\ngot:\n%s", tb, got)
	}
}

func TestCSVPreservesClasses(t *testing.T) {
	tb := tableI(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tb.NumCols(); i++ {
		want, have := tb.Schema().Column(i), got.Schema().Column(i)
		if want != have {
			t.Errorf("column %d: %+v != %+v", i, want, have)
		}
	}
}

func TestCSVNumericLookingIdentifiersStayText(t *testing.T) {
	in := strings.Join([]string{
		"EmpID,Salary",
		"id:text,s:number",
		"00421,50000",
		"9,60000",
	}, "\n")
	tb, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := tb.Cell(0, 0).Text(); !ok || got != "00421" {
		t.Errorf("cell = %v, want text 00421", tb.Cell(0, 0))
	}
	if got, ok := tb.Cell(1, 0).Text(); !ok || got != "9" {
		t.Errorf("cell = %v, want text 9", tb.Cell(1, 0))
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"missing meta", "A,B\n"},
		{"meta width", "A,B\nqi:number\n"},
		{"bad class", "A\nxx:number\n1\n"},
		{"bad kind", "A\nqi:blob\n1\n"},
		{"malformed meta", "A\nqinumber\n1\n"},
		{"row width", "A,B\nqi:number,qi:number\n1\n"},
		{"kind violation", "A\nqi:number\nhello\n"},
		{"bad interval", "A\nqi:number\n[9-2]\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.in)); err == nil {
				t.Errorf("ReadCSV accepted %q", tc.in)
			}
		})
	}
}

func TestCSVQuotedCells(t *testing.T) {
	tb := New(MustSchema(
		Column{Name: "Name", Class: Identifier, Kind: Text},
		Column{Name: "Employment", Class: QuasiIdentifier, Kind: Text},
	))
	tb.MustAppendRow(Str("Alice"), Str("CEO, Deutsche Bank"))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Cell(0, 1).Text(); v != "CEO, Deutsche Bank" {
		t.Errorf("quoted cell = %q", v)
	}
}

func TestCSVEmptyTable(t *testing.T) {
	tb := New(MustSchema(Column{Name: "A", Class: QuasiIdentifier, Kind: Number}))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 || got.NumCols() != 1 {
		t.Errorf("shape = %dx%d", got.NumRows(), got.NumCols())
	}
}
