package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// CSV layout: two header lines, then data rows.
//
//	Name,Age,Income          ← column names
//	id:text,qi:number,s:number  ← class:kind per column
//	Alice,28,91250
//	Bob,[25-30],*
//
// Cells use the Value.String encoding, so intervals and suppressed cells
// round-trip. This self-describing layout lets the CLIs exchange the paper's
// P, P' and Q tables as flat files.

// WriteCSV writes the table in the two-header CSV layout.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return fmt.Errorf("dataset: write csv header: %w", err)
	}
	meta := make([]string, t.NumCols())
	for i := 0; i < t.NumCols(); i++ {
		c := t.Schema().Column(i)
		meta[i] = classTag(c.Class) + ":" + kindTag(c.Kind)
	}
	if err := cw.Write(meta); err != nil {
		return fmt.Errorf("dataset: write csv meta header: %w", err)
	}
	cells := make([]string, t.NumCols())
	for i := 0; i < t.NumRows(); i++ {
		for j := 0; j < t.NumCols(); j++ {
			cells[j] = t.Cell(i, j).String()
		}
		if err := cw.Write(cells); err != nil {
			return fmt.Errorf("dataset: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: flush csv: %w", err)
	}
	return nil
}

// ReadCSV reads a table in the two-header CSV layout. Records are decoded
// straight into column buffers through a Builder, so ingest does not
// materialize a []Value row per record.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	// Records are parsed cell-by-cell into column chunks before Read is
	// called again, so the reader can reuse its record buffer: ingest
	// allocates per cell, not per line.
	cr.ReuseRecord = true
	names, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv header: %w", err)
	}
	// ReuseRecord means the next Read clobbers this record slice; the header
	// outlives it, so copy.
	names = append([]string(nil), names...)
	meta, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv meta header: %w", err)
	}
	if len(meta) != len(names) {
		return nil, fmt.Errorf("dataset: csv meta header has %d fields, want %d", len(meta), len(names))
	}
	cols := make([]Column, len(names))
	for i, m := range meta {
		class, kind, err := parseMeta(m)
		if err != nil {
			return nil, fmt.Errorf("dataset: csv column %q: %w", names[i], err)
		}
		cols[i] = Column{Name: names[i], Class: class, Kind: kind}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	b := NewBuilder(schema)
	for line := 3; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read csv line %d: %w", line, err)
		}
		if err := b.AppendRecord(rec); err != nil {
			return nil, fmt.Errorf("dataset: csv line %d: %w", line, err)
		}
	}
	return b.Table(), nil
}

func classTag(c AttrClass) string {
	switch c {
	case Identifier:
		return "id"
	case QuasiIdentifier:
		return "qi"
	case Sensitive:
		return "s"
	default:
		return "qi"
	}
}

func kindTag(k ValueKind) string {
	if k == Text {
		return "text"
	}
	return "number"
}

func parseMeta(m string) (AttrClass, ValueKind, error) {
	parts := strings.SplitN(strings.TrimSpace(m), ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("malformed meta %q (want class:kind)", m)
	}
	class, err := ParseAttrClass(parts[0])
	if err != nil {
		return 0, 0, err
	}
	switch strings.ToLower(parts[1]) {
	case "number", "num", "n":
		return class, Number, nil
	case "text", "str", "t":
		return class, Text, nil
	default:
		return 0, 0, fmt.Errorf("unknown kind %q", parts[1])
	}
}
