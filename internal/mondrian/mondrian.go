// Package mondrian implements Mondrian multidimensional k-anonymity
// (LeFevre, DeWitt, Ramakrishnan, ICDE 2006 — reference [3] of the paper).
//
// Mondrian recursively median-splits the quasi-identifier space along the
// dimension with the widest normalized range, as long as both halves keep at
// least k records (strict partitioning), then generalizes each leaf
// partition's quasi-identifiers to the covering interval.
//
// It is the second partitioning baseline the reproduction uses to check the
// paper's claim that "other solutions in this category produce similar
// results".
//
// The recursion works in place on one shared row-index slice: each split
// sorts its own segment and recurses on the two halves, so no per-split
// copies are made and leaves are sub-slices of the original buffer. Sort
// keys are (value, row) pairs staged through a pooled scratch buffer —
// cache-friendly for the sorter and allocation-free at steady state. Because
// sibling segments are disjoint, independent sub-partitions can recurse on
// spare workers from a parallel.Budget; leaf lists are combined
// left-then-right, so the leaf order is the sequential depth-first order at
// any worker count.
package mondrian

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"repro/internal/dataset"
	"repro/internal/parallel"
)

// Anonymizer runs Mondrian partitioning. The zero value is ready to use.
type Anonymizer struct {
	// Relaxed allows ties at the median to be split between the halves
	// (relaxed multidimensional partitioning). The strict variant keeps
	// records with equal split values together.
	Relaxed bool
}

// New returns a strict Mondrian anonymizer.
func New() *Anonymizer { return &Anonymizer{} }

// Name identifies the scheme in reports.
func (a *Anonymizer) Name() string { return "mondrian" }

// Anonymize returns a k-anonymous copy of t with quasi-identifiers replaced
// by per-partition covering intervals.
func (a *Anonymizer) Anonymize(t *dataset.Table, k int) (*dataset.Table, error) {
	return a.AnonymizeParallel(t, k, nil)
}

// AnonymizeParallel is Anonymize with independent sub-partitions recursed on
// spare workers borrowed from b. A nil budget runs fully inline; the output
// is identical at every budget.
func (a *Anonymizer) AnonymizeParallel(t *dataset.Table, k int, b *parallel.Budget) (*dataset.Table, error) {
	parts, err := a.PartitionParallel(t, k, b)
	if err != nil {
		return nil, err
	}
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	out := t.Clone()
	for _, c := range qis {
		vals, ok := t.FloatColumn(c)
		for _, p := range parts {
			lo, hi := rangeOf(vals, ok, p)
			var cell dataset.Value
			if lo == hi {
				cell = dataset.Num(lo)
			} else {
				cell = dataset.Span(lo, hi)
			}
			for _, i := range p {
				if err := out.SetCell(i, c, cell); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// Partition returns the leaf partitions (row index groups), each of size ≥ k.
func (a *Anonymizer) Partition(t *dataset.Table, k int) ([][]int, error) {
	return a.PartitionParallel(t, k, nil)
}

// PartitionParallel is Partition with parallel recursion over independent
// sub-partitions. The split tree depends only on the data — segment sorting
// and cut selection happen before any fork — so the leaves are identical to
// the sequential ones, in the same depth-first order, at any worker budget.
func (a *Anonymizer) PartitionParallel(t *dataset.Table, k int, b *parallel.Budget) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("mondrian: k must be ≥ 2, got %d", k)
	}
	n := t.NumRows()
	if n < k {
		return nil, fmt.Errorf("mondrian: %d records cannot be %d-anonymous: %w", n, k, dataset.ErrTooFewRecords)
	}
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	if len(qis) == 0 {
		return nil, errors.New("mondrian: table has no quasi-identifier columns")
	}
	for _, c := range qis {
		if t.Schema().Column(c).Kind != dataset.Number {
			return nil, fmt.Errorf("mondrian: quasi-identifier %q is not numeric", t.Schema().Column(c).Name)
		}
	}
	// Extract every quasi-identifier column once, indexed by position in qis;
	// the recursion then works on flat vectors instead of per-cell reads.
	p := &partitioner{a: a, k: k, b: b}
	p.vals = make([][]float64, len(qis))
	p.ok = make([][]bool, len(qis))
	p.span = make([]float64, len(qis))
	p.idx = make([]int, n)
	for i := range p.idx {
		p.idx[i] = i
	}
	for j, c := range qis {
		p.vals[j], p.ok[j] = t.FloatColumn(c)
		// Global ranges for normalized width comparison.
		lo, hi := rangeOf(p.vals[j], p.ok[j], p.idx)
		p.span[j] = hi - lo
	}
	segs := p.split(0, n)
	leaves := make([][]int, len(segs))
	for i, s := range segs {
		leaves[i] = p.idx[s.lo:s.hi:s.hi]
	}
	return leaves, nil
}

// partitioner is the per-call state of one Mondrian partitioning run: column
// vectors indexed by quasi-identifier position, the shared row-index buffer
// the recursion permutes in place, and the worker budget.
type partitioner struct {
	a    *Anonymizer
	vals [][]float64
	ok   [][]bool
	span []float64 // global hi−lo per dimension
	idx  []int
	k    int
	b    *parallel.Budget
}

// segment is a half-open [lo, hi) range of the shared index buffer.
type segment struct{ lo, hi int }

// split partitions idx[lo:hi] and returns its leaf segments in depth-first
// order. When a spare worker token is available the left half recurses on a
// goroutine; left and right leaf lists are concatenated in order either way.
func (p *partitioner) split(lo, hi int) []segment {
	seg := p.idx[lo:hi]
	if len(seg) < 2*p.k {
		return []segment{{lo, hi}}
	}
	// Choose the dimension with the widest normalized range.
	bestDim, bestWidth := -1, -1.0
	for j := range p.vals {
		l, h := rangeOf(p.vals[j], p.ok[j], seg)
		if p.span[j] == 0 {
			continue
		}
		w := (h - l) / p.span[j]
		if w > bestWidth {
			bestWidth, bestDim = w, j
		}
	}
	if bestDim < 0 || bestWidth == 0 {
		if !p.a.Relaxed {
			return []segment{{lo, hi}}
		}
		// Relaxed partitioning may still split an all-ties partition
		// (the halves get identical generalized cells, which is fine).
		bestDim = 0
	}
	cut, ok := p.a.medianSplit(p.vals[bestDim], seg, p.k)
	if !ok {
		return []segment{{lo, hi}}
	}
	mid := lo + cut
	if p.b.TryAcquire() {
		var left []segment
		done := make(chan struct{})
		go func() {
			left = p.split(lo, mid)
			p.b.Release()
			close(done)
		}()
		right := p.split(mid, hi)
		<-done
		return append(left, right...)
	}
	left := p.split(lo, mid)
	return append(left, p.split(mid, hi)...)
}

// kv pairs a sort value with its row index; sorting pairs instead of
// indirecting through the value vector keeps the comparator cache-local.
type kv struct {
	v float64
	i int
}

// kvPool recycles sort scratch across splits (and across concurrent
// branches, which each Get their own buffer).
var kvPool = sync.Pool{New: func() any { return new([]kv) }}

// medianSplit sorts seg in place by (value, row) — a strict total order, so
// the result is unique regardless of sort algorithm — and returns the cut
// position within seg (suppressed cells read as 0, as in the cellwise form).
// Returns ok=false when no allowable cut leaves both halves with ≥ k records.
func (a *Anonymizer) medianSplit(vals []float64, seg []int, k int) (cut int, ok bool) {
	pp := kvPool.Get().(*[]kv)
	ps := *pp
	if cap(ps) < len(seg) {
		ps = make([]kv, len(seg))
	}
	ps = ps[:len(seg)]
	for p, i := range seg {
		ps[p] = kv{vals[i], i}
	}
	slices.SortFunc(ps, func(x, y kv) int {
		switch {
		case x.v < y.v:
			return -1
		case x.v > y.v:
			return 1
		}
		return x.i - y.i
	})
	for p := range ps {
		seg[p] = ps[p].i
	}
	*pp = ps
	kvPool.Put(pp)
	if a.Relaxed {
		mid := len(seg) / 2
		if mid < k || len(seg)-mid < k {
			return 0, false
		}
		return mid, true
	}
	// Strict: cut between distinct values only. Find the cut closest to the
	// median where both halves have ≥ k records.
	bestCut, bestDist := -1, len(seg)+1
	for c := k; c <= len(seg)-k; c++ {
		if vals[seg[c-1]] == vals[seg[c]] {
			continue // would split a tie group
		}
		d := abs(c - len(seg)/2)
		if d < bestDist {
			bestDist, bestCut = d, c
		}
	}
	if bestCut < 0 {
		return 0, false
	}
	return bestCut, true
}

// rangeOf is the observed [min, max] of the partition's numeric readings,
// skipping suppressed cells.
func rangeOf(vals []float64, ok []bool, idx []int) (lo, hi float64) {
	first := true
	for _, i := range idx {
		if !ok[i] {
			continue
		}
		v := vals[i]
		if first {
			lo, hi, first = v, v, false
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
