// Package mondrian implements Mondrian multidimensional k-anonymity
// (LeFevre, DeWitt, Ramakrishnan, ICDE 2006 — reference [3] of the paper).
//
// Mondrian recursively median-splits the quasi-identifier space along the
// dimension with the widest normalized range, as long as both halves keep at
// least k records (strict partitioning), then generalizes each leaf
// partition's quasi-identifiers to the covering interval.
//
// It is the second partitioning baseline the reproduction uses to check the
// paper's claim that "other solutions in this category produce similar
// results".
package mondrian

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dataset"
)

// Anonymizer runs Mondrian partitioning. The zero value is ready to use.
type Anonymizer struct {
	// Relaxed allows ties at the median to be split between the halves
	// (relaxed multidimensional partitioning). The strict variant keeps
	// records with equal split values together.
	Relaxed bool
}

// New returns a strict Mondrian anonymizer.
func New() *Anonymizer { return &Anonymizer{} }

// Name identifies the scheme in reports.
func (a *Anonymizer) Name() string { return "mondrian" }

// Anonymize returns a k-anonymous copy of t with quasi-identifiers replaced
// by per-partition covering intervals.
func (a *Anonymizer) Anonymize(t *dataset.Table, k int) (*dataset.Table, error) {
	parts, err := a.Partition(t, k)
	if err != nil {
		return nil, err
	}
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	out := t.Clone()
	for _, c := range qis {
		vals, ok := t.FloatColumn(c)
		for _, p := range parts {
			lo, hi := rangeOf(vals, ok, p)
			var cell dataset.Value
			if lo == hi {
				cell = dataset.Num(lo)
			} else {
				cell = dataset.Span(lo, hi)
			}
			for _, i := range p {
				if err := out.SetCell(i, c, cell); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// Partition returns the leaf partitions (row index groups), each of size ≥ k.
func (a *Anonymizer) Partition(t *dataset.Table, k int) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("mondrian: k must be ≥ 2, got %d", k)
	}
	if t.NumRows() < k {
		return nil, fmt.Errorf("mondrian: %d records cannot be %d-anonymous: %w", t.NumRows(), k, dataset.ErrTooFewRecords)
	}
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	if len(qis) == 0 {
		return nil, errors.New("mondrian: table has no quasi-identifier columns")
	}
	for _, c := range qis {
		if t.Schema().Column(c).Kind != dataset.Number {
			return nil, fmt.Errorf("mondrian: quasi-identifier %q is not numeric", t.Schema().Column(c).Name)
		}
	}
	// Extract every quasi-identifier column once; the recursive partitioning
	// then works on flat vectors instead of per-cell reads.
	colVals := make(map[int][]float64, len(qis))
	colOK := make(map[int][]bool, len(qis))
	for _, c := range qis {
		colVals[c], colOK[c] = t.FloatColumn(c)
	}

	// Global ranges for normalized width comparison.
	globalLo := make(map[int]float64, len(qis))
	globalHi := make(map[int]float64, len(qis))
	all := make([]int, t.NumRows())
	for i := range all {
		all[i] = i
	}
	for _, c := range qis {
		lo, hi := rangeOf(colVals[c], colOK[c], all)
		globalLo[c], globalHi[c] = lo, hi
	}

	var leaves [][]int
	var split func(part []int)
	split = func(part []int) {
		if len(part) < 2*k {
			leaves = append(leaves, part)
			return
		}
		// Choose the dimension with the widest normalized range.
		bestDim, bestWidth := -1, -1.0
		for _, c := range qis {
			lo, hi := rangeOf(colVals[c], colOK[c], part)
			span := globalHi[c] - globalLo[c]
			if span == 0 {
				continue
			}
			w := (hi - lo) / span
			if w > bestWidth {
				bestWidth, bestDim = w, c
			}
		}
		if bestDim < 0 || bestWidth == 0 {
			if !a.Relaxed {
				leaves = append(leaves, part)
				return
			}
			// Relaxed partitioning may still split an all-ties partition
			// (the halves get identical generalized cells, which is fine).
			bestDim = qis[0]
		}
		left, right, ok := a.medianSplit(colVals[bestDim], part, k)
		if !ok {
			leaves = append(leaves, part)
			return
		}
		split(left)
		split(right)
	}
	split(all)
	return leaves, nil
}

// medianSplit splits part on the dimension's value vector at the median
// (suppressed cells read as 0, as in the cellwise form). Returns ok=false
// when no allowable cut leaves both halves with ≥ k records.
func (a *Anonymizer) medianSplit(vals []float64, part []int, k int) (left, right []int, ok bool) {
	sorted := append([]int(nil), part...)
	sort.SliceStable(sorted, func(x, y int) bool {
		vx, vy := vals[sorted[x]], vals[sorted[y]]
		if vx != vy {
			return vx < vy
		}
		return sorted[x] < sorted[y]
	})
	if a.Relaxed {
		mid := len(sorted) / 2
		if mid < k || len(sorted)-mid < k {
			return nil, nil, false
		}
		return sorted[:mid], sorted[mid:], true
	}
	// Strict: cut between distinct values only. Find the cut closest to the
	// median where both halves have ≥ k records.
	bestCut, bestDist := -1, len(sorted)+1
	for cut := k; cut <= len(sorted)-k; cut++ {
		if vals[sorted[cut-1]] == vals[sorted[cut]] {
			continue // would split a tie group
		}
		d := abs(cut - len(sorted)/2)
		if d < bestDist {
			bestDist, bestCut = d, cut
		}
	}
	if bestCut < 0 {
		return nil, nil, false
	}
	return sorted[:bestCut], sorted[bestCut:], true
}

// rangeOf is the observed [min, max] of the partition's numeric readings,
// skipping suppressed cells.
func rangeOf(vals []float64, ok []bool, idx []int) (lo, hi float64) {
	first := true
	for _, i := range idx {
		if !ok[i] {
			continue
		}
		v := vals[i]
		if first {
			lo, hi, first = v, v, false
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
