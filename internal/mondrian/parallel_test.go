package mondrian

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// TestPartitionParallelDeterminism pins parallel recursion to the sequential
// split tree: identical leaves, in identical depth-first order, at every
// worker budget — for both variants, on data with heavy ties.
func TestPartitionParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = []float64{float64(rng.Intn(20)), rng.Float64() * 100, float64(rng.Intn(3))}
	}
	tb := numTable(t, rows)
	for _, relaxed := range []bool{false, true} {
		a := &Anonymizer{Relaxed: relaxed}
		for _, k := range []int{2, 5, 11} {
			want, err := a.Partition(tb, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				t.Run(fmt.Sprintf("relaxed=%v/k=%d/w=%d", relaxed, k, workers), func(t *testing.T) {
					got, err := a.PartitionParallel(tb, k, parallel.NewBudget(workers))
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("%d leaves, want %d", len(got), len(want))
					}
					for g := range got {
						if len(got[g]) != len(want[g]) {
							t.Fatalf("leaf %d has %d rows, want %d", g, len(got[g]), len(want[g]))
						}
						for i := range got[g] {
							if got[g][i] != want[g][i] {
								t.Fatalf("leaf %d row %d = %d, want %d", g, i, got[g][i], want[g][i])
							}
						}
					}
				})
			}
		}
	}
}
