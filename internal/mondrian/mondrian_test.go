package mondrian

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func numTable(t testing.TB, rows [][]float64) *dataset.Table {
	if t != nil {
		t.Helper()
	}
	cols := []dataset.Column{{Name: "Name", Class: dataset.Identifier, Kind: dataset.Text}}
	for j := 0; j < len(rows[0]); j++ {
		cols = append(cols, dataset.Column{Name: string(rune('A' + j)), Class: dataset.QuasiIdentifier, Kind: dataset.Number})
	}
	tb := dataset.New(dataset.MustSchema(cols...))
	for i, r := range rows {
		cells := []dataset.Value{dataset.Str(string(rune('a'+i%26)) + string(rune('0'+i/26)))}
		for _, v := range r {
			cells = append(cells, dataset.Num(v))
		}
		tb.MustAppendRow(cells...)
	}
	return tb
}

func TestPartitionSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows := make([][]float64, 37)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 100, rng.Float64() * 10}
	}
	tb := numTable(t, rows)
	for _, k := range []int{2, 3, 5} {
		parts, err := New().Partition(tb, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		var covered int
		for _, p := range parts {
			if len(p) < k {
				t.Errorf("k=%d: partition of size %d", k, len(p))
			}
			covered += len(p)
		}
		if covered != len(rows) {
			t.Errorf("k=%d: covered %d of %d", k, covered, len(rows))
		}
	}
}

func TestAnonymizeIsKAnonymous(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := make([][]float64, 50)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 10, float64(i % 7)}
	}
	tb := numTable(t, rows)
	for _, k := range []int{2, 4, 6} {
		anon, err := New().Anonymize(tb, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		qis := anon.Schema().IndicesOf(dataset.QuasiIdentifier)
		for _, g := range anon.GroupBy(qis) {
			if len(g) < k {
				t.Errorf("k=%d: class of size %d", k, len(g))
			}
		}
	}
}

func TestAnonymizeCellsCoverOriginals(t *testing.T) {
	rows := [][]float64{{1, 5}, {2, 6}, {3, 7}, {8, 1}, {9, 2}, {10, 3}}
	tb := numTable(t, rows)
	anon, err := New().Anonymize(tb, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		for j, x := range r {
			if !anon.Cell(i, j+1).Contains(x) {
				t.Errorf("cell (%d,%d)=%v does not cover %g", i, j+1, anon.Cell(i, j+1), x)
			}
		}
	}
	// Identifiers untouched.
	for i := 0; i < tb.NumRows(); i++ {
		if !anon.Cell(i, 0).Equal(tb.Cell(i, 0)) {
			t.Error("identifier modified")
		}
	}
}

func TestStrictKeepsTiesTogether(t *testing.T) {
	// Eight records, one dimension, two tie groups of 4. Strict Mondrian may
	// cut only between the 4s and 5s.
	rows := [][]float64{{4}, {4}, {4}, {4}, {5}, {5}, {5}, {5}}
	tb := numTable(t, rows)
	parts, err := New().Partition(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("parts = %d, want 2", len(parts))
	}
	for _, p := range parts {
		v0, _ := tb.Cell(p[0], 1).Float()
		for _, i := range p {
			v, _ := tb.Cell(i, 1).Float()
			if v != v0 {
				t.Errorf("strict split separated tie group: %v", p)
			}
		}
	}
}

func TestRelaxedSplitsTies(t *testing.T) {
	// All-equal values: strict cannot split, relaxed can.
	rows := [][]float64{{7}, {7}, {7}, {7}}
	tb := numTable(t, rows)
	strict, err := New().Partition(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) != 1 {
		t.Errorf("strict parts = %d, want 1", len(strict))
	}
	relaxed, err := (&Anonymizer{Relaxed: true}).Partition(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(relaxed) != 2 {
		t.Errorf("relaxed parts = %d, want 2", len(relaxed))
	}
}

func TestErrors(t *testing.T) {
	tb := numTable(t, [][]float64{{1}, {2}, {3}})
	if _, err := New().Partition(tb, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := New().Partition(tb, 4); err == nil {
		t.Error("k>n accepted")
	}
	cat := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Q", Class: dataset.QuasiIdentifier, Kind: dataset.Text}))
	cat.MustAppendRow(dataset.Str("x"))
	cat.MustAppendRow(dataset.Str("y"))
	if _, err := New().Partition(cat, 2); err == nil {
		t.Error("categorical QI accepted")
	}
	noQI := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "S", Class: dataset.Sensitive, Kind: dataset.Number}))
	noQI.MustAppendRow(dataset.Num(1))
	noQI.MustAppendRow(dataset.Num(2))
	if _, err := New().Partition(noQI, 2); err == nil {
		t.Error("no-QI accepted")
	}
}

func TestName(t *testing.T) {
	if New().Name() == "" {
		t.Error("empty name")
	}
}

// Property: partitions always have size ≥ k and cover all rows exactly once,
// for both strict and relaxed variants.
func TestPartitionInvariantProperty(t *testing.T) {
	f := func(seed int64, kRaw, nRaw, relaxed uint8) bool {
		k := int(kRaw)%4 + 2  // 2..5
		n := int(nRaw)%50 + k // k..k+49
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{rng.Float64() * 50, float64(rng.Intn(4))}
		}
		tb := numTable(nil, rows)
		a := &Anonymizer{Relaxed: relaxed%2 == 1}
		parts, err := a.Partition(tb, k)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for _, p := range parts {
			if len(p) < k {
				return false
			}
			for _, i := range p {
				if seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Mondrian partitions never produce fewer groups when k shrinks
// (more granularity is always allowed at smaller k on the same data).
func TestMonotoneGranularityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rows := make([][]float64, 60)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	tb := numTable(t, rows)
	prev := -1
	for k := 8; k >= 2; k-- {
		parts, err := New().Partition(tb, k)
		if err != nil {
			t.Fatal(err)
		}
		if prev != -1 && len(parts) < prev {
			t.Errorf("k=%d has %d parts, fewer than k=%d's %d", k, len(parts), k+1, prev)
		}
		prev = len(parts)
	}
}
