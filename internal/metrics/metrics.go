// Package metrics implements the paper's measurement layer: the
// mean-squared-trace dissimilarity of Definition 1, the Bayardo–Agrawal
// discernibility metric C_DM and the derived utility U = 1/C_DM (Section
// 6.C), the adversary's information gain G (Section 6.B), and the weighted
// protection+utility objective H (Section 4).
package metrics

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
)

// ErrShape is returned when two datasets do not represent the same set of
// individuals and attributes, which Definition 1 requires.
var ErrShape = errors.New("metrics: datasets have different shapes")

// Dissimilarity computes Definition 1 of the paper over two row-major
// numeric matrices representing the same individuals and attributes:
//
//	D1 ∘ D2 = (1/m) · Tr((D1 − D2)ᵀ (D1 − D2))
//
// which equals the mean over records of the squared Euclidean row distance.
func Dissimilarity(d1, d2 [][]float64) (float64, error) {
	m := len(d1)
	if m != len(d2) {
		return 0, fmt.Errorf("%w: %d vs %d rows", ErrShape, m, len(d2))
	}
	if m == 0 {
		return 0, fmt.Errorf("%w: empty datasets", ErrShape)
	}
	var total float64
	for i := range d1 {
		if len(d1[i]) != len(d2[i]) {
			return 0, fmt.Errorf("%w: row %d has %d vs %d attributes", ErrShape, i, len(d1[i]), len(d2[i]))
		}
		for j := range d1[i] {
			d := d1[i][j] - d2[i][j]
			total += d * d
		}
	}
	return total / float64(m), nil
}

// TableDissimilarity applies Definition 1 to two tables over the named
// columns, reading generalized cells at their interval midpoints and
// suppressed cells as def. Both tables must have the rows in the same
// individual order (the enterprise release keeps identifiers, so callers can
// align by name first; see internal/linkage).
//
// It extracts each side as column vectors and accumulates in the same
// row-major order as Dissimilarity, so the result is bit-identical to the
// matrix form without materializing row-major matrices.
func TableDissimilarity(t1, t2 *dataset.Table, cols []string, def float64) (float64, error) {
	if t1.NumRows() != t2.NumRows() {
		return 0, fmt.Errorf("%w: %d vs %d rows", ErrShape, t1.NumRows(), t2.NumRows())
	}
	idx1, err := columnIndices(t1, cols)
	if err != nil {
		return 0, err
	}
	idx2, err := columnIndices(t2, cols)
	if err != nil {
		return 0, err
	}
	v1 := make([][]float64, len(cols))
	v2 := make([][]float64, len(cols))
	for j := range cols {
		v1[j] = t1.ColumnFloats(idx1[j], def)
		v2[j] = t2.ColumnFloats(idx2[j], def)
	}
	return ColumnDissimilarity(v1, v2, t1.NumRows())
}

// ColumnDissimilarity is Definition 1 over column vectors: d1 and d2 hold one
// vector of length m per compared attribute. The accumulation order matches
// Dissimilarity's row-major walk exactly.
func ColumnDissimilarity(d1, d2 [][]float64, m int) (float64, error) {
	if len(d1) != len(d2) {
		return 0, fmt.Errorf("%w: %d vs %d columns", ErrShape, len(d1), len(d2))
	}
	if m == 0 {
		return 0, fmt.Errorf("%w: empty datasets", ErrShape)
	}
	for j := range d1 {
		if len(d1[j]) != m || len(d2[j]) != m {
			return 0, fmt.Errorf("%w: column %d has %d vs %d values for %d rows", ErrShape, j, len(d1[j]), len(d2[j]), m)
		}
	}
	// The row-major walk (record outer, attribute inner) is the accumulation
	// order Definition 1 is pinned to; the specializations below hoist the
	// column slices out of the inner loop and re-slice to m so the compiler
	// drops the bounds checks, while adding the very same terms in the very
	// same order as the generic walk.
	var total float64
	switch len(d1) {
	case 1:
		a0, b0 := d1[0][:m], d2[0][:m]
		for i := 0; i < m; i++ {
			d := a0[i] - b0[i]
			total += d * d
		}
	case 2:
		a0, b0 := d1[0][:m], d2[0][:m]
		a1, b1 := d1[1][:m], d2[1][:m]
		for i := 0; i < m; i++ {
			d := a0[i] - b0[i]
			total += d * d
			d = a1[i] - b1[i]
			total += d * d
		}
	case 3:
		a0, b0 := d1[0][:m], d2[0][:m]
		a1, b1 := d1[1][:m], d2[1][:m]
		a2, b2 := d1[2][:m], d2[2][:m]
		for i := 0; i < m; i++ {
			d := a0[i] - b0[i]
			total += d * d
			d = a1[i] - b1[i]
			total += d * d
			d = a2[i] - b2[i]
			total += d * d
		}
	case 4:
		a0, b0 := d1[0][:m], d2[0][:m]
		a1, b1 := d1[1][:m], d2[1][:m]
		a2, b2 := d1[2][:m], d2[2][:m]
		a3, b3 := d1[3][:m], d2[3][:m]
		for i := 0; i < m; i++ {
			d := a0[i] - b0[i]
			total += d * d
			d = a1[i] - b1[i]
			total += d * d
			d = a2[i] - b2[i]
			total += d * d
			d = a3[i] - b3[i]
			total += d * d
		}
	default:
		for i := 0; i < m; i++ {
			for j := range d1 {
				d := d1[j][i] - d2[j][i]
				total += d * d
			}
		}
	}
	return total / float64(m), nil
}

func columnIndices(t *dataset.Table, cols []string) ([]int, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, err := t.Schema().Lookup(c)
		if err != nil {
			return nil, fmt.Errorf("metrics: %w", err)
		}
		idx[i] = j
	}
	return idx, nil
}

// Discernibility computes the Bayardo–Agrawal discernibility metric:
//
//	C_DM(g, k) = Σ_{|E| ≥ k} |E|² + Σ_{|E| < k} |D|·|E|
//
// where E ranges over the equivalence classes induced on the table by the
// quasi-identifier columns. Classes smaller than k (suppressed or
// non-conforming rows) pay the severe |D|·|E| penalty.
//
// The classes are computed with a dataset.Grouper rather than Table.GroupBy;
// the class *order* differs (first occurrence vs lexicographic key), but
// every C_DM term is an integer below 2⁵³ — |E|² ≤ n² and |D|·|E| ≤ n², with
// the total bounded by 2n² — so the float64 sum is exact and order-
// independent: the result is bit-identical to the GroupBy formulation
// (TestDiscernibilityMatchesGroupBy pins this).
func Discernibility(t *dataset.Table, k int) (float64, error) {
	return DiscernibilityWith(t, k, nil)
}

// DiscernibilityWith is Discernibility with caller-owned grouping scratch: a
// warm Grouper makes the per-level utility computation of a sweep
// allocation-free. A nil Grouper uses a temporary one.
func DiscernibilityWith(t *dataset.Table, k int, g *dataset.Grouper) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("metrics: discernibility needs k ≥ 1, got %d", k)
	}
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	if len(qis) == 0 {
		return 0, errors.New("metrics: table has no quasi-identifier columns")
	}
	if g == nil {
		g = new(dataset.Grouper)
	}
	_, sizes := g.Classes(t, qis)
	n := float64(t.NumRows())
	k32 := int32(k)
	var cdm float64
	for _, s := range sizes {
		size := float64(s)
		if s >= k32 {
			cdm += size * size
		} else {
			cdm += n * size
		}
	}
	return cdm, nil
}

// Utility computes U_k = 1 / C_DM(k) as in Section 6.C. An empty table has
// zero utility.
func Utility(t *dataset.Table, k int) (float64, error) {
	return UtilityWith(t, k, nil)
}

// UtilityWith is Utility with caller-owned grouping scratch (see
// DiscernibilityWith).
func UtilityWith(t *dataset.Table, k int, g *dataset.Grouper) (float64, error) {
	if t.NumRows() == 0 {
		return 0, nil
	}
	cdm, err := DiscernibilityWith(t, k, g)
	if err != nil {
		return 0, err
	}
	return 1 / cdm, nil
}

// PerRecordUtility returns the paper's per-record utility column
// u_i = 1/C_i where C_i is the cost of the equivalence class of record i
// (|E|² if |E| ≥ k, |D|·|E| otherwise).
func PerRecordUtility(t *dataset.Table, k int) ([]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("metrics: per-record utility needs k ≥ 1, got %d", k)
	}
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	if len(qis) == 0 {
		return nil, errors.New("metrics: table has no quasi-identifier columns")
	}
	var g dataset.Grouper
	ids, sizes := g.Classes(t, qis)
	n := float64(t.NumRows())
	k32 := int32(k)
	// 1/cost per class, then a gather: per-row values depend only on the
	// row's own class, never on class order.
	inv := make([]float64, len(sizes))
	for c, s := range sizes {
		size := float64(s)
		if s >= k32 {
			inv[c] = 1 / (size * size)
		} else {
			inv[c] = 1 / (n * size)
		}
	}
	out := make([]float64, t.NumRows())
	for i, id := range ids {
		out[i] = inv[id]
	}
	return out, nil
}

// InformationGain is the paper's G = (P ∘ P') − (P ∘ P̂) (Section 6.B): how
// much closer the adversary's post-fusion estimate is to the truth than the
// pre-fusion release alone.
func InformationGain(beforeFusion, afterFusion float64) float64 {
	return beforeFusion - afterFusion
}
