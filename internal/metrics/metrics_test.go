package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDissimilarityDefinition(t *testing.T) {
	// Hand-computed: rows (1,2) vs (3,2) and (0,0) vs (0,4):
	// ((2²+0²)+(0²+4²)) / 2 = 10.
	d1 := [][]float64{{1, 2}, {0, 0}}
	d2 := [][]float64{{3, 2}, {0, 4}}
	got, err := Dissimilarity(d1, d2)
	if err != nil || got != 10 {
		t.Errorf("Dissimilarity = %g, %v; want 10", got, err)
	}
}

func TestDissimilarityIdentity(t *testing.T) {
	d := [][]float64{{1, 2, 3}, {4, 5, 6}}
	got, err := Dissimilarity(d, d)
	if err != nil || got != 0 {
		t.Errorf("self dissimilarity = %g, %v", got, err)
	}
}

func TestDissimilarityShapeErrors(t *testing.T) {
	if _, err := Dissimilarity(nil, nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := Dissimilarity([][]float64{{1}}, [][]float64{{1}, {2}}); err == nil {
		t.Error("row mismatch accepted")
	}
	if _, err := Dissimilarity([][]float64{{1}}, [][]float64{{1, 2}}); err == nil {
		t.Error("column mismatch accepted")
	}
}

// Properties of Definition 1: symmetry, non-negativity, identity of
// indiscernibles on the diagonal.
func TestDissimilarityProperties(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		m1 := [][]float64{{a, b}}
		m2 := [][]float64{{c, d}}
		d12, e1 := Dissimilarity(m1, m2)
		d21, e2 := Dissimilarity(m2, m1)
		d11, e3 := Dissimilarity(m1, m1)
		if e1 != nil || e2 != nil || e3 != nil {
			return false
		}
		return d12 == d21 && d12 >= 0 && d11 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func miniTable(t *testing.T, ages []dataset.Value) *dataset.Table {
	t.Helper()
	tb := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Name", Class: dataset.Identifier, Kind: dataset.Text},
		dataset.Column{Name: "Age", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "Income", Class: dataset.Sensitive, Kind: dataset.Number},
	))
	for i, a := range ages {
		tb.MustAppendRow(dataset.Str(string(rune('A'+i))), a, dataset.Num(float64(1000*(i+1))))
	}
	return tb
}

func TestTableDissimilarity(t *testing.T) {
	t1 := miniTable(t, []dataset.Value{dataset.Num(20), dataset.Num(40)})
	t2 := miniTable(t, []dataset.Value{dataset.Span(10, 30), dataset.Num(42)})
	// Age reads 20 vs 20 (midpoint) and 40 vs 42 → (0 + 4)/2 = 2.
	got, err := TableDissimilarity(t1, t2, []string{"Age"}, 0)
	if err != nil || got != 2 {
		t.Errorf("TableDissimilarity = %g, %v; want 2", got, err)
	}
	// Unknown column errors.
	if _, err := TableDissimilarity(t1, t2, []string{"Nope"}, 0); err == nil {
		t.Error("unknown column accepted")
	}
	// Row mismatch errors.
	t3 := miniTable(t, []dataset.Value{dataset.Num(1)})
	if _, err := TableDissimilarity(t1, t3, []string{"Age"}, 0); err == nil {
		t.Error("row mismatch accepted")
	}
}

func TestTableDissimilaritySuppressedUsesDefault(t *testing.T) {
	t1 := miniTable(t, []dataset.Value{dataset.Num(20)})
	t2 := miniTable(t, []dataset.Value{dataset.NullValue()})
	got, err := TableDissimilarity(t1, t2, []string{"Age"}, 50)
	if err != nil || got != 900 { // (20-50)²
		t.Errorf("suppressed dissimilarity = %g, %v; want 900", got, err)
	}
}

func groupedTable(t *testing.T, sizes []int) *dataset.Table {
	if t != nil {
		t.Helper()
	}
	tb := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "QI", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
	))
	for g, size := range sizes {
		for i := 0; i < size; i++ {
			tb.MustAppendRow(dataset.Num(float64(g)))
		}
	}
	return tb
}

func TestDiscernibility(t *testing.T) {
	// Groups of 3 and 2, k=2: 3² + 2² = 13.
	tb := groupedTable(t, []int{3, 2})
	got, err := Discernibility(tb, 2)
	if err != nil || got != 13 {
		t.Errorf("C_DM = %g, %v; want 13", got, err)
	}
	// k=3: group of 2 is non-conforming → 3² + |D|·2 = 9 + 10 = 19.
	got, err = Discernibility(tb, 3)
	if err != nil || got != 19 {
		t.Errorf("C_DM(k=3) = %g, %v; want 19", got, err)
	}
	if _, err := Discernibility(tb, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestDiscernibilityNeedsQIs(t *testing.T) {
	tb := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "S", Class: dataset.Sensitive, Kind: dataset.Number},
	))
	tb.MustAppendRow(dataset.Num(1))
	if _, err := Discernibility(tb, 2); err == nil {
		t.Error("no-QI table accepted")
	}
}

func TestUtility(t *testing.T) {
	tb := groupedTable(t, []int{3, 2})
	u, err := Utility(tb, 2)
	if err != nil || !almost(u, 1.0/13, 1e-15) {
		t.Errorf("U = %g, %v; want 1/13", u, err)
	}
	empty := groupedTable(t, nil)
	u, err = Utility(empty, 2)
	if err != nil || u != 0 {
		t.Errorf("empty utility = %g, %v", u, err)
	}
}

func TestUtilityDecreasesWithK(t *testing.T) {
	// One big group of 12: C_DM grows from k≤12 (144) to k=13 (12·12=144)…
	// use two groups so the k-threshold actually bites.
	tb := groupedTable(t, []int{6, 6})
	var prev = math.Inf(1)
	for k := 2; k <= 7; k++ {
		u, err := Utility(tb, k)
		if err != nil {
			t.Fatal(err)
		}
		if u > prev {
			t.Fatalf("utility increased at k=%d: %g > %g", k, u, prev)
		}
		prev = u
	}
	// k=7 makes both groups non-conforming: C_DM = 12·6 + 12·6 = 144 vs 72.
	u6, _ := Utility(tb, 6)
	u7, _ := Utility(tb, 7)
	if !almost(u6, 1.0/72, 1e-15) || !almost(u7, 1.0/144, 1e-15) {
		t.Errorf("u6 = %g, u7 = %g", u6, u7)
	}
}

func TestPerRecordUtility(t *testing.T) {
	tb := groupedTable(t, []int{3, 2})
	u, err := PerRecordUtility(tb, 3)
	if err != nil {
		t.Fatal(err)
	}
	// First three records in the size-3 class: cost 9. Last two: cost 5·2=10.
	for i := 0; i < 3; i++ {
		if !almost(u[i], 1.0/9, 1e-15) {
			t.Errorf("u[%d] = %g, want 1/9", i, u[i])
		}
	}
	for i := 3; i < 5; i++ {
		if !almost(u[i], 1.0/10, 1e-15) {
			t.Errorf("u[%d] = %g, want 1/10", i, u[i])
		}
	}
	if _, err := PerRecordUtility(tb, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestInformationGain(t *testing.T) {
	if g := InformationGain(5.3e8, 3.2e8); !almost(g, 2.1e8, 1) {
		t.Errorf("G = %g", g)
	}
	if g := InformationGain(1, 2); g != -1 {
		t.Errorf("negative gain = %g", g)
	}
}

// Property: per-record utilities of a conforming table sum to
// Σ_E |E|·(1/|E|²) = Σ_E 1/|E| and every record in one class gets the same
// utility.
func TestPerRecordUtilityConsistencyProperty(t *testing.T) {
	f := func(sizesRaw []uint8) bool {
		var sizes []int
		for _, s := range sizesRaw {
			if len(sizes) >= 6 {
				break
			}
			sizes = append(sizes, int(s%5)+2) // classes of 2..6
		}
		if len(sizes) == 0 {
			return true
		}
		tb := groupedTable(nil, sizes)
		u, err := PerRecordUtility(tb, 2)
		if err != nil {
			return false
		}
		var want float64
		for _, s := range sizes {
			want += 1 / float64(s)
		}
		return almost(Sum(u), want, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Sum is a tiny local helper to avoid importing stats here.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// TestColumnDissimilaritySpecializations pins every specialized column-count
// path to the generic matrix form bit for bit — the specializations must add
// the same terms in the same order.
func TestColumnDissimilaritySpecializations(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for width := 1; width <= 6; width++ {
		const m = 257
		cols1 := make([][]float64, width)
		cols2 := make([][]float64, width)
		rows1 := make([][]float64, m)
		rows2 := make([][]float64, m)
		for i := range rows1 {
			rows1[i] = make([]float64, width)
			rows2[i] = make([]float64, width)
		}
		for j := 0; j < width; j++ {
			cols1[j] = make([]float64, m)
			cols2[j] = make([]float64, m)
			for i := 0; i < m; i++ {
				cols1[j][i] = rng.NormFloat64() * 1000
				cols2[j][i] = cols1[j][i] + rng.NormFloat64()
				rows1[i][j], rows2[i][j] = cols1[j][i], cols2[j][i]
			}
		}
		want, err := Dissimilarity(rows1, rows2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ColumnDissimilarity(cols1, cols2, m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("width %d: column form %v != matrix form %v", width, got, want)
		}
	}
}
