package metrics

import (
	"testing"
	"testing/quick"
)

func TestHSeriesByMax(t *testing.T) {
	d := []float64{3.0e8, 3.2e8, 3.4e8}
	u := []float64{0.004, 0.002, 0.001}
	h, err := HSeries(d, u, DefaultHOptions())
	if err != nil {
		t.Fatal(err)
	}
	// D̃ = d/3.4e8, Ũ = u/0.004.
	want0 := 0.5*(3.0/3.4) + 0.5*1.0
	if !almost(h[0], want0, 1e-12) {
		t.Errorf("h[0] = %g, want %g", h[0], want0)
	}
	for _, v := range h {
		if v < 0 || v > 1 {
			t.Errorf("by-max H out of [0,1]: %g", v)
		}
	}
}

func TestHSeriesNone(t *testing.T) {
	d := []float64{2, 4}
	u := []float64{1, 1}
	h, err := HSeries(d, u, HOptions{W1: 0.5, W2: 0.5, Normalize: NormalizeNone})
	if err != nil {
		t.Fatal(err)
	}
	if h[0] != 1.5 || h[1] != 2.5 {
		t.Errorf("raw H = %v", h)
	}
}

func TestHSeriesMinMax(t *testing.T) {
	d := []float64{10, 20, 30}
	u := []float64{3, 2, 1}
	h, err := HSeries(d, u, HOptions{W1: 1, W2: 1, Normalize: NormalizeMinMax})
	if err != nil {
		t.Fatal(err)
	}
	// D̃ = {0, .5, 1}, Ũ = {1, .5, 0} → all 1.
	for i, v := range h {
		if !almost(v, 1, 1e-12) {
			t.Errorf("h[%d] = %g, want 1", i, v)
		}
	}
}

func TestHSeriesDegenerate(t *testing.T) {
	// Constant series under min-max and zero series under by-max are all 0.
	h, err := HSeries([]float64{5, 5}, []float64{0, 0}, HOptions{W1: 1, W2: 1, Normalize: NormalizeMinMax})
	if err != nil {
		t.Fatal(err)
	}
	if h[0] != 0 || h[1] != 0 {
		t.Errorf("degenerate min-max = %v", h)
	}
	h, err = HSeries([]float64{0, 0}, []float64{0, 0}, DefaultHOptions())
	if err != nil {
		t.Fatal(err)
	}
	if h[0] != 0 || h[1] != 0 {
		t.Errorf("degenerate by-max = %v", h)
	}
}

func TestHSeriesErrors(t *testing.T) {
	if _, err := HSeries([]float64{1}, []float64{1, 2}, DefaultHOptions()); err == nil {
		t.Error("misaligned accepted")
	}
	if _, err := HSeries(nil, nil, DefaultHOptions()); err == nil {
		t.Error("empty accepted")
	}
	if _, err := HSeries([]float64{1}, []float64{1}, HOptions{W1: -1, W2: 0.5}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestArgMax(t *testing.T) {
	i, v, err := ArgMax([]float64{1, 5, 3, 5})
	if err != nil || i != 1 || v != 5 {
		t.Errorf("ArgMax = (%d, %g, %v)", i, v, err)
	}
	if _, _, err := ArgMax(nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestHNormalizationString(t *testing.T) {
	for _, tc := range []struct {
		n    HNormalization
		want string
	}{
		{NormalizeByMax, "by-max"}, {NormalizeNone, "none"}, {NormalizeMinMax, "min-max"},
	} {
		if got := tc.n.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

// Property: with by-max normalization and W1+W2 = 1 over non-negative series,
// H stays in [0, 1]; and ArgMax returns an index whose value dominates.
func TestHSeriesBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		n := len(raw) / 2
		d := make([]float64, n)
		u := make([]float64, n)
		for i := 0; i < n; i++ {
			d[i] = float64(raw[i])
			u[i] = float64(raw[n+i])
		}
		h, err := HSeries(d, u, DefaultHOptions())
		if err != nil {
			return false
		}
		i, v, err := ArgMax(h)
		if err != nil {
			return false
		}
		for _, x := range h {
			if x < -1e-12 || x > 1+1e-12 || x > v {
				return false
			}
		}
		return h[i] == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
