package metrics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// groupByDiscernibility is the legacy GroupBy-ordered formulation, kept as
// the reference semantics for the Grouper-based hot path.
func groupByDiscernibility(t *dataset.Table, k int) float64 {
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	n := float64(t.NumRows())
	var cdm float64
	for _, e := range t.GroupBy(qis) {
		size := float64(len(e))
		if len(e) >= k {
			cdm += size * size
		} else {
			cdm += n * size
		}
	}
	return cdm
}

// TestDiscernibilityMatchesGroupBy pins the exact-integer-sum argument: the
// Grouper visits classes in a different order than GroupBy, but every C_DM
// term is an integer < 2⁵³, so the sum is exact and the bits must agree.
func TestDiscernibilityMatchesGroupBy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	schema, err := dataset.NewSchema(
		dataset.Column{Name: "q1", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "q2", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "s", Class: dataset.Sensitive, Kind: dataset.Number},
	)
	if err != nil {
		t.Fatal(err)
	}
	var g dataset.Grouper
	for trial := 0; trial < 40; trial++ {
		tb := dataset.New(schema)
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			row := []dataset.Value{
				dataset.Num(float64(rng.Intn(9))),
				dataset.Span(float64(rng.Intn(4)), float64(4+rng.Intn(4))),
				dataset.Num(rng.Float64()),
			}
			if rng.Intn(9) == 0 {
				row[0] = dataset.NullValue()
			}
			if err := tb.AppendRow(row); err != nil {
				t.Fatal(err)
			}
		}
		for _, k := range []int{1, 2, 5} {
			got, err := DiscernibilityWith(tb, k, &g)
			if err != nil {
				t.Fatal(err)
			}
			want := groupByDiscernibility(tb, k)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("trial %d k=%d: Grouper C_DM %v != GroupBy C_DM %v", trial, k, got, want)
			}
			pru, err := PerRecordUtility(tb, k)
			if err != nil {
				t.Fatal(err)
			}
			nf := float64(tb.NumRows())
			qis := tb.Schema().IndicesOf(dataset.QuasiIdentifier)
			for _, e := range tb.GroupBy(qis) {
				size := float64(len(e))
				cost := size * size
				if len(e) < k {
					cost = nf * size
				}
				for _, i := range e {
					if math.Float64bits(pru[i]) != math.Float64bits(1/cost) {
						t.Fatalf("trial %d k=%d: per-record utility of row %d diverged", trial, k, i)
					}
				}
			}
		}
	}
}
