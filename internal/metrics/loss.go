package metrics

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
)

// This file adds the generalization information-loss metrics used as
// alternative utility measures in the reproduction's ablations. The paper
// uses only the discernibility metric [22]; NCP and GenILoss are the other
// standard choices in the k-anonymity literature and let us check that
// FRED's optimum is not an artifact of the utility definition.

// NCP computes the Normalized Certainty Penalty of a generalized table
// against the original: for each numeric quasi-identifier cell, the
// generalized width divided by the attribute's domain width in the original,
// averaged over all QI cells. Suppressed cells count as fully generalized
// (penalty 1). The result lies in [0, 1]; 0 means no generalization.
func NCP(original, generalized *dataset.Table) (float64, error) {
	if original.NumRows() != generalized.NumRows() {
		return 0, fmt.Errorf("%w: %d vs %d rows", ErrShape, original.NumRows(), generalized.NumRows())
	}
	if original.NumRows() == 0 {
		return 0, errors.New("metrics: NCP of empty tables")
	}
	qis := original.Schema().IndicesOf(dataset.QuasiIdentifier)
	var total float64
	var cells int
	for _, c := range qis {
		col := original.Schema().Column(c)
		if col.Kind != dataset.Number {
			continue
		}
		gc, err := generalized.Schema().Lookup(col.Name)
		if err != nil {
			return 0, fmt.Errorf("metrics: NCP: %w", err)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < original.NumRows(); i++ {
			if v, ok := original.Cell(i, c).Float(); ok {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		domain := hi - lo
		for i := 0; i < generalized.NumRows(); i++ {
			v := generalized.Cell(i, gc)
			cells++
			switch {
			case v.IsNull():
				total++ // suppression: full penalty
			case domain == 0:
				// Constant attribute: any bounded cell is penalty-free.
			default:
				total += v.Width() / domain
			}
		}
	}
	if cells == 0 {
		return 0, errors.New("metrics: NCP found no numeric quasi-identifier cells")
	}
	return total / float64(cells), nil
}

// GenILoss is LeFevre et al.'s normalized information loss: identical to
// NCP up to the handling of exact (width-zero) generalized cells, reported
// here per record rather than per cell — the mean over records of the mean
// cell penalty within the record.
func GenILoss(original, generalized *dataset.Table) (float64, error) {
	if original.NumRows() != generalized.NumRows() {
		return 0, fmt.Errorf("%w: %d vs %d rows", ErrShape, original.NumRows(), generalized.NumRows())
	}
	if original.NumRows() == 0 {
		return 0, errors.New("metrics: GenILoss of empty tables")
	}
	qis := original.Schema().IndicesOf(dataset.QuasiIdentifier)
	type dom struct {
		col   int
		width float64
	}
	var doms []dom
	for _, c := range qis {
		col := original.Schema().Column(c)
		if col.Kind != dataset.Number {
			continue
		}
		gc, err := generalized.Schema().Lookup(col.Name)
		if err != nil {
			return 0, fmt.Errorf("metrics: GenILoss: %w", err)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < original.NumRows(); i++ {
			if v, ok := original.Cell(i, c).Float(); ok {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		doms = append(doms, dom{gc, hi - lo})
	}
	if len(doms) == 0 {
		return 0, errors.New("metrics: GenILoss found no numeric quasi-identifier cells")
	}
	var recordSum float64
	for i := 0; i < generalized.NumRows(); i++ {
		var cellSum float64
		for _, d := range doms {
			v := generalized.Cell(i, d.col)
			switch {
			case v.IsNull():
				cellSum++
			case d.width == 0:
				// penalty-free
			default:
				cellSum += v.Width() / d.width
			}
		}
		recordSum += cellSum / float64(len(doms))
	}
	return recordSum / float64(generalized.NumRows()), nil
}
