package metrics

import (
	"testing"

	"repro/internal/dataset"
)

func lossTables(t *testing.T, orig, gen []dataset.Value) (*dataset.Table, *dataset.Table) {
	t.Helper()
	mk := func(vals []dataset.Value) *dataset.Table {
		tb := dataset.New(dataset.MustSchema(
			dataset.Column{Name: "Age", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		))
		for _, v := range vals {
			tb.MustAppendRow(v)
		}
		return tb
	}
	return mk(orig), mk(gen)
}

func TestNCP(t *testing.T) {
	// Domain [20, 60] (width 40). Cells: exact (0), [20-40] (0.5), null (1),
	// [20-60] (1) → mean = 2.5/4.
	orig, gen := lossTables(t,
		[]dataset.Value{dataset.Num(20), dataset.Num(30), dataset.Num(50), dataset.Num(60)},
		[]dataset.Value{dataset.Num(20), dataset.Span(20, 40), dataset.NullValue(), dataset.Span(20, 60)},
	)
	got, err := NCP(orig, gen)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5/4 {
		t.Errorf("NCP = %g, want %g", got, 2.5/4)
	}
}

func TestNCPIdentityIsZero(t *testing.T) {
	orig, gen := lossTables(t,
		[]dataset.Value{dataset.Num(1), dataset.Num(2)},
		[]dataset.Value{dataset.Num(1), dataset.Num(2)},
	)
	got, err := NCP(orig, gen)
	if err != nil || got != 0 {
		t.Errorf("NCP identity = %g, %v", got, err)
	}
}

func TestNCPConstantDomain(t *testing.T) {
	orig, gen := lossTables(t,
		[]dataset.Value{dataset.Num(5), dataset.Num(5)},
		[]dataset.Value{dataset.Num(5), dataset.NullValue()},
	)
	got, err := NCP(orig, gen)
	if err != nil {
		t.Fatal(err)
	}
	// Exact cell: 0; suppressed: 1 → 0.5.
	if got != 0.5 {
		t.Errorf("NCP constant = %g", got)
	}
}

func TestNCPErrors(t *testing.T) {
	orig, _ := lossTables(t, []dataset.Value{dataset.Num(1)}, []dataset.Value{dataset.Num(1)})
	_, gen := lossTables(t, []dataset.Value{dataset.Num(1), dataset.Num(2)}, []dataset.Value{dataset.Num(1), dataset.Num(2)})
	if _, err := NCP(orig, gen); err == nil {
		t.Error("row mismatch accepted")
	}
	empty, empty2 := lossTables(t, nil, nil)
	if _, err := NCP(empty, empty2); err == nil {
		t.Error("empty accepted")
	}
	// No numeric QIs.
	txt := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "N", Class: dataset.QuasiIdentifier, Kind: dataset.Text}))
	txt.MustAppendRow(dataset.Str("x"))
	if _, err := NCP(txt, txt); err == nil {
		t.Error("text-only accepted")
	}
	// Generalized table missing the column.
	other := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Other", Class: dataset.QuasiIdentifier, Kind: dataset.Number}))
	other.MustAppendRow(dataset.Num(1))
	one, _ := lossTables(t, []dataset.Value{dataset.Num(1)}, nil)
	if _, err := NCP(one, other); err == nil {
		t.Error("missing column accepted")
	}
}

func TestGenILoss(t *testing.T) {
	orig, gen := lossTables(t,
		[]dataset.Value{dataset.Num(0), dataset.Num(10)},
		[]dataset.Value{dataset.Span(0, 5), dataset.NullValue()},
	)
	got, err := GenILoss(orig, gen)
	if err != nil {
		t.Fatal(err)
	}
	// Records: 0.5 and 1 → mean 0.75.
	if got != 0.75 {
		t.Errorf("GenILoss = %g, want 0.75", got)
	}
	if _, err := GenILoss(orig, orig); err != nil {
		t.Fatal(err)
	}
	if v, _ := GenILoss(orig, orig); v != 0 {
		t.Errorf("identity GenILoss = %g", v)
	}
}

func TestGenILossErrors(t *testing.T) {
	orig, _ := lossTables(t, []dataset.Value{dataset.Num(1)}, []dataset.Value{dataset.Num(1)})
	_, gen := lossTables(t, []dataset.Value{dataset.Num(1), dataset.Num(2)}, []dataset.Value{dataset.Num(1), dataset.Num(2)})
	if _, err := GenILoss(orig, gen); err == nil {
		t.Error("row mismatch accepted")
	}
	empty, empty2 := lossTables(t, nil, nil)
	if _, err := GenILoss(empty, empty2); err == nil {
		t.Error("empty accepted")
	}
}

func TestLossGrowsWithK(t *testing.T) {
	// Integration with a real anonymizer lives in the root tests; here check
	// monotonicity on hand-generalized tables.
	orig, g1 := lossTables(t,
		[]dataset.Value{dataset.Num(0), dataset.Num(5), dataset.Num(10)},
		[]dataset.Value{dataset.Span(0, 5), dataset.Span(0, 5), dataset.Num(10)},
	)
	_, g2 := lossTables(t,
		[]dataset.Value{dataset.Num(0), dataset.Num(5), dataset.Num(10)},
		[]dataset.Value{dataset.Span(0, 10), dataset.Span(0, 10), dataset.Span(0, 10)},
	)
	n1, err := NCP(orig, g1)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := NCP(orig, g2)
	if err != nil {
		t.Fatal(err)
	}
	if n1 >= n2 {
		t.Errorf("coarser generalization has smaller NCP: %g vs %g", n1, n2)
	}
}
