package metrics

import (
	"errors"
	"fmt"
	"math"
)

// HOptions configures the weighted protection+utility objective of Section 4:
//
//	H = W1·(P ∘ P̂) + W2·U
//
// The paper's Figure 8 plots H in [0.16, 0.32], which is only reachable if
// the two terms are brought to a common scale before weighting (the raw
// dissimilarity is ~1e8 while U is ~1e-3). Normalize controls that scaling —
// see DESIGN.md §6.
type HOptions struct {
	// W1 weighs protection (dissimilarity of the adversary's estimate), W2
	// weighs utility. The paper uses W1 = W2 = 0.5.
	W1, W2 float64
	// Normalize selects the term scaling.
	Normalize HNormalization
}

// HNormalization enumerates the supported scalings of the two H terms.
type HNormalization int

const (
	// NormalizeByMax divides each term by its maximum over the sweep before
	// weighting, landing both in [0, 1]. This reproduces the magnitude of
	// the paper's Figure 8 and is the default.
	NormalizeByMax HNormalization = iota
	// NormalizeNone uses the raw values. The protection term then dominates
	// utterly; kept for the ablation bench.
	NormalizeNone
	// NormalizeMinMax affinely maps each term onto [0, 1] over the sweep.
	NormalizeMinMax
)

// String returns the normalization name.
func (n HNormalization) String() string {
	switch n {
	case NormalizeByMax:
		return "by-max"
	case NormalizeNone:
		return "none"
	case NormalizeMinMax:
		return "min-max"
	default:
		return fmt.Sprintf("HNormalization(%d)", int(n))
	}
}

// DefaultHOptions returns the paper's setting: equal weights, by-max scaling.
func DefaultHOptions() HOptions {
	return HOptions{W1: 0.5, W2: 0.5, Normalize: NormalizeByMax}
}

// ErrNoCandidates is returned when H is requested over an empty sweep.
var ErrNoCandidates = errors.New("metrics: no candidates in sweep")

// HSeries computes H_i = W1·D̃_i + W2·Ũ_i for aligned dissimilarity and
// utility series, applying the configured normalization across the series.
func HSeries(dissim, util []float64, opts HOptions) ([]float64, error) {
	if len(dissim) != len(util) {
		return nil, fmt.Errorf("metrics: H over misaligned series (%d vs %d)", len(dissim), len(util))
	}
	if len(dissim) == 0 {
		return nil, ErrNoCandidates
	}
	if opts.W1 < 0 || opts.W2 < 0 {
		return nil, fmt.Errorf("metrics: negative weights W1=%g W2=%g", opts.W1, opts.W2)
	}
	d := scale(dissim, opts.Normalize)
	u := scale(util, opts.Normalize)
	out := make([]float64, len(d))
	for i := range d {
		out[i] = opts.W1*d[i] + opts.W2*u[i]
	}
	return out, nil
}

func scale(xs []float64, n HNormalization) []float64 {
	out := make([]float64, len(xs))
	switch n {
	case NormalizeNone:
		copy(out, xs)
	case NormalizeByMax:
		var max float64
		for _, x := range xs {
			if math.Abs(x) > max {
				max = math.Abs(x)
			}
		}
		if max == 0 {
			return out
		}
		for i, x := range xs {
			out[i] = x / max
		}
	case NormalizeMinMax:
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if hi == lo {
			return out
		}
		for i, x := range xs {
			out[i] = (x - lo) / (hi - lo)
		}
	}
	return out
}

// ArgMax returns the index of the maximal value (first occurrence) and the
// value itself.
func ArgMax(xs []float64) (int, float64, error) {
	if len(xs) == 0 {
		return 0, 0, ErrNoCandidates
	}
	best, bestI := xs[0], 0
	for i, x := range xs[1:] {
		if x > best {
			best, bestI = x, i+1
		}
	}
	return bestI, best, nil
}
