package perturb

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func numTable(t testing.TB, vals []float64) *dataset.Table {
	if t != nil {
		t.Helper()
	}
	tb := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Name", Class: dataset.Identifier, Kind: dataset.Text},
		dataset.Column{Name: "Q", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "S", Class: dataset.Sensitive, Kind: dataset.Number},
	))
	for i, v := range vals {
		tb.MustAppendRow(dataset.Str(string(rune('a'+i%26))+string(rune('0'+i/26))), dataset.Num(v), dataset.Num(v*10))
	}
	return tb
}

func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func TestLaplaceDeterministic(t *testing.T) {
	tb := numTable(t, seq(20))
	a1, err := New(7).Anonymize(tb, 4)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := New(7).Anonymize(tb, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Equal(a2) {
		t.Error("same seed+level differ")
	}
	a3, err := New(8).Anonymize(tb, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Equal(a3) {
		t.Error("different seeds identical")
	}
}

func TestLaplaceActuallyPerturbs(t *testing.T) {
	tb := numTable(t, seq(30))
	out, err := New(1).Anonymize(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	var changed int
	for i := 0; i < tb.NumRows(); i++ {
		if out.Cell(i, 1).MustFloat() != tb.Cell(i, 1).MustFloat() {
			changed++
		}
	}
	if changed < tb.NumRows()/2 {
		t.Errorf("only %d of %d cells perturbed", changed, tb.NumRows())
	}
	// Identifiers and sensitive values untouched.
	for i := 0; i < tb.NumRows(); i++ {
		if !out.Cell(i, 0).Equal(tb.Cell(i, 0)) || !out.Cell(i, 2).Equal(tb.Cell(i, 2)) {
			t.Fatal("non-QI cells modified")
		}
	}
}

func TestLaplaceNoiseGrowsWithLevel(t *testing.T) {
	tb := numTable(t, seq(200))
	dev := func(k int) float64 {
		l := New(3)
		l.ClampToDomain = false
		out, err := l.Anonymize(tb, k)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := 0; i < tb.NumRows(); i++ {
			sum += math.Abs(out.Cell(i, 1).MustFloat() - tb.Cell(i, 1).MustFloat())
		}
		return sum / float64(tb.NumRows())
	}
	if d2, d16 := dev(2), dev(16); d16 <= d2 {
		t.Errorf("noise did not grow with level: %g at k=2 vs %g at k=16", d2, d16)
	}
}

func TestLaplaceClamping(t *testing.T) {
	tb := numTable(t, seq(50))
	out, err := New(5).Anonymize(tb, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < out.NumRows(); i++ {
		v := out.Cell(i, 1).MustFloat()
		if v < 0 || v > 49 {
			t.Errorf("clamped value %g escaped [0, 49]", v)
		}
	}
}

func TestLaplacePreservesSuppressedAndConstant(t *testing.T) {
	tb := numTable(t, []float64{5, 5, 5, 5})
	if err := tb.SetCell(1, 1, dataset.NullValue()); err != nil {
		t.Fatal(err)
	}
	out, err := New(2).Anonymize(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Cell(1, 1).IsNull() {
		t.Error("suppressed cell perturbed")
	}
	// Constant column (width 0) passes through.
	if got := out.Cell(0, 1).MustFloat(); got != 5 {
		t.Errorf("constant column perturbed to %g", got)
	}
}

func TestLaplaceCustomEpsilon(t *testing.T) {
	tb := numTable(t, seq(100))
	strong := New(3)
	strong.Epsilon = func(int) float64 { return 100 } // nearly no noise
	strong.ClampToDomain = false
	out, err := strong.Anonymize(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i < tb.NumRows(); i++ {
		sum += math.Abs(out.Cell(i, 1).MustFloat() - tb.Cell(i, 1).MustFloat())
	}
	if mean := sum / float64(tb.NumRows()); mean > 5 {
		t.Errorf("ε=100 mean |noise| = %g, want small", mean)
	}
	bad := New(3)
	bad.Epsilon = func(int) float64 { return 0 }
	if _, err := bad.Anonymize(tb, 2); err == nil {
		t.Error("zero epsilon accepted")
	}
}

func TestLaplaceErrors(t *testing.T) {
	tb := numTable(t, seq(3))
	if _, err := New(1).Anonymize(tb, 0); err == nil {
		t.Error("level 0 accepted")
	}
	if _, err := New(1).Anonymize(tb, 4); err == nil {
		t.Error("level beyond cohort accepted")
	}
	empty := numTable(t, nil)
	if _, err := New(1).Anonymize(empty, 1); err == nil {
		t.Error("empty table accepted")
	}
	noQI := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "S", Class: dataset.Sensitive, Kind: dataset.Number}))
	noQI.MustAppendRow(dataset.Num(1))
	if _, err := New(1).Anonymize(noQI, 1); err == nil {
		t.Error("no-QI accepted")
	}
	if New(1).Name() == "" {
		t.Error("empty name")
	}
}

// Property: unclamped Laplace noise is empirically centered — the mean over
// a large cohort stays well inside one noise scale.
func TestLaplaceCenteredProperty(t *testing.T) {
	f := func(seed int64) bool {
		tb := numTable(nil, seq(300))
		l := New(seed)
		l.ClampToDomain = false
		out, err := l.Anonymize(tb, 2)
		if err != nil {
			return false
		}
		var sum float64
		for i := 0; i < tb.NumRows(); i++ {
			sum += out.Cell(i, 1).MustFloat() - tb.Cell(i, 1).MustFloat()
		}
		mean := sum / float64(tb.NumRows())
		scale := 299.0 / 0.5 // width/ε at k=2
		return math.Abs(mean) < scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
