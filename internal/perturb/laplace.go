// Package perturb implements the paper's *other* anonymization family
// (Section 1's taxonomy): perturbation-based schemes that add noise to the
// data instead of partitioning it, in the spirit of the randomization
// literature the paper cites ([5], [6]) and the Laplace mechanism of
// differential privacy [10].
//
// The reproduction uses it as an ablation: is the fusion attack specific to
// partitioning-based releases, or does it breach noisy releases too? (It
// does — the auxiliary channel is untouched by release-side noise.)
package perturb

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// Laplace anonymizes by adding Laplace noise to every numeric
// quasi-identifier cell. To slot into the FRED sweep (which speaks in
// anonymization levels k), the level maps to a privacy budget via Epsilon;
// the default is ε(k) = 1/k per attribute — higher levels mean more noise,
// mirroring "more anonymization".
type Laplace struct {
	// Seed drives the noise; runs are deterministic per (seed, level).
	Seed int64
	// Epsilon maps the sweep level to a per-attribute privacy budget.
	// Nil means ε(k) = 1/k.
	Epsilon func(k int) float64
	// ClampToDomain keeps noisy values inside the attribute's observed
	// [min, max] rather than publishing impossible indexes.
	ClampToDomain bool
}

// New returns a Laplace perturbator with the default ε(k) = 1/k and domain
// clamping on.
func New(seed int64) *Laplace {
	return &Laplace{Seed: seed, ClampToDomain: true}
}

// Name identifies the scheme in reports.
func (l *Laplace) Name() string { return "laplace-perturbation" }

// Anonymize implements the core Anonymizer contract. The sensitivity of
// each attribute is its observed domain width (record-level sensitivity for
// bounded attributes), so the noise scale is width/ε(k).
func (l *Laplace) Anonymize(t *dataset.Table, k int) (*dataset.Table, error) {
	if k < 1 {
		return nil, fmt.Errorf("perturb: level must be ≥ 1, got %d", k)
	}
	if t.NumRows() == 0 {
		return nil, errors.New("perturb: empty table")
	}
	if t.NumRows() < k {
		// Match the partitioning schemes' contract so sweeps terminate the
		// same way (dataset.ErrTooFewRecords is the sentinel core checks).
		return nil, fmt.Errorf("perturb: %d records cannot be perturbed at level %d (level exceeds cohort): %w", t.NumRows(), k, dataset.ErrTooFewRecords)
	}
	eps := 1 / float64(k)
	if l.Epsilon != nil {
		eps = l.Epsilon(k)
	}
	if eps <= 0 {
		return nil, fmt.Errorf("perturb: epsilon must be positive, got %g", eps)
	}
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	var numeric []int
	for _, c := range qis {
		if t.Schema().Column(c).Kind == dataset.Number {
			numeric = append(numeric, c)
		}
	}
	if len(numeric) == 0 {
		return nil, errors.New("perturb: table has no numeric quasi-identifier columns")
	}
	// Derive the noise stream from seed and level so every level of a sweep
	// is independently reproducible.
	rng := rand.New(rand.NewSource(l.Seed ^ (int64(k) * 0x5851f42d4c957f2d)))
	out := t.Clone()
	for _, c := range numeric {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < t.NumRows(); i++ {
			if v, ok := t.Cell(i, c).Float(); ok {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		width := hi - lo
		if width == 0 {
			continue // constant column: nothing to hide
		}
		scale := width / eps
		for i := 0; i < t.NumRows(); i++ {
			v, ok := t.Cell(i, c).Float()
			if !ok {
				continue // suppressed stays suppressed
			}
			noisy := v + laplaceSample(rng, scale)
			if l.ClampToDomain {
				noisy = math.Min(math.Max(noisy, lo), hi)
			}
			if err := out.SetCell(i, c, dataset.Num(noisy)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// laplaceSample draws from Laplace(0, scale) by inverse transform.
func laplaceSample(rng *rand.Rand, scale float64) float64 {
	u := rng.Float64() - 0.5
	if u >= 0 {
		return -scale * math.Log(1-2*u)
	}
	return scale * math.Log(1+2*u)
}
