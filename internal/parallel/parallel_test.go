package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewBudget(t *testing.T) {
	if b := NewBudget(0); b != nil {
		t.Fatalf("NewBudget(0) = %v, want nil", b)
	}
	if b := NewBudget(1); b != nil {
		t.Fatalf("NewBudget(1) = %v, want nil", b)
	}
	b := NewBudget(3)
	if b.Cap() != 3 {
		t.Fatalf("Cap() = %d, want 3", b.Cap())
	}
	var nilB *Budget
	if nilB.Cap() != 0 {
		t.Fatalf("nil Cap() = %d, want 0", nilB.Cap())
	}
}

func TestTryAcquireRelease(t *testing.T) {
	b := NewBudget(2)
	if !b.TryAcquire() || !b.TryAcquire() {
		t.Fatal("two TryAcquire on a 2-token budget must succeed")
	}
	if b.TryAcquire() {
		t.Fatal("third TryAcquire must fail")
	}
	b.Release()
	if !b.TryAcquire() {
		t.Fatal("TryAcquire after Release must succeed")
	}
	b.Release()
	b.Release()

	var nilB *Budget
	if nilB.TryAcquire() {
		t.Fatal("nil budget TryAcquire must fail")
	}
	nilB.Acquire() // must not block or panic
	nilB.Release()
}

// TestForCoversRange checks every element is visited exactly once, for nil and
// non-nil budgets, across sizes around the grain boundaries.
func TestForCoversRange(t *testing.T) {
	budgets := map[string]*Budget{"nil": nil, "b4": NewBudget(4)}
	for name, b := range budgets {
		for _, n := range []int{0, 1, 255, 256, 257, 1000, 4096, 10007} {
			hits := make([]int32, n)
			b.For(n, 256, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("%s n=%d: bad chunk [%d,%d)", name, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("%s n=%d: element %d visited %d times", name, n, i, h)
				}
			}
		}
	}
}

// TestForChunkDecompositionFixed pins the determinism contract: the set of
// (lo, hi) chunks depends only on (n, grain), not on the budget.
func TestForChunkDecompositionFixed(t *testing.T) {
	collect := func(b *Budget, n, grain int) map[[2]int]bool {
		var mu sync.Mutex
		chunks := make(map[[2]int]bool)
		b.For(n, grain, func(lo, hi int) {
			mu.Lock()
			chunks[[2]int{lo, hi}] = true
			mu.Unlock()
		})
		return chunks
	}
	n, grain := 10000, 512
	seq := collect(nil, n, grain)
	for _, workers := range []int{2, 8} {
		par := collect(NewBudget(workers), n, grain)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d chunks, sequential had %d", workers, len(par), len(seq))
		}
		for c := range seq {
			if !par[c] {
				t.Fatalf("workers=%d: chunk %v missing", workers, c)
			}
		}
	}
	if got, want := len(seq), NumChunks(n, grain); got != want {
		t.Fatalf("observed %d chunks, NumChunks says %d", got, want)
	}
}

// TestForReleasesTokens checks that For returns every borrowed token, so a
// kernel loop cannot leak the sweep's budget dry.
func TestForReleasesTokens(t *testing.T) {
	b := NewBudget(4)
	for iter := 0; iter < 50; iter++ {
		b.For(5000, 256, func(lo, hi int) {})
	}
	got := 0
	for b.TryAcquire() {
		got++
	}
	if got != 4 {
		t.Fatalf("recovered %d tokens of 4 after For loops", got)
	}
}

// TestForOrderedReduction exercises the documented pattern: per-chunk partials
// combined in chunk order must be identical at every worker count.
func TestForOrderedReduction(t *testing.T) {
	n, grain := 100000, 1024
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1.0 / float64(i+3)
	}
	sum := func(b *Budget) float64 {
		partials := make([]float64, NumChunks(n, grain))
		b.For(n, grain, func(lo, hi int) {
			var s float64
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			partials[lo/grain] = s
		})
		var total float64
		for _, p := range partials {
			total += p
		}
		return total
	}
	want := sum(nil)
	for _, workers := range []int{2, 8} {
		if got := sum(NewBudget(workers)); got != want {
			t.Fatalf("workers=%d: sum %x differs from sequential %x", workers, got, want)
		}
	}
}
