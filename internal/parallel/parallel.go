// Package parallel provides the worker budget and the deterministic
// parallel-for the partitioning kernels run on.
//
// A sweep owns ONE Budget sized to its worker count. Level workers acquire a
// token for the duration of a level; kernels inside a level (MDAV distance
// scans, mondrian sub-partition recursion) borrow whatever tokens are left
// over, non-blockingly, and always fall back to running inline. Total
// goroutine parallelism across the sweep therefore never exceeds the budget —
// level-parallelism and within-level parallelism share one pool instead of
// multiplying into oversubscription.
//
// Determinism contract: nothing scheduled through a Budget may change results
// with the number of tokens available. For enforces it structurally — the
// chunk decomposition depends only on (n, grain), never on how many workers
// picked the chunks up, so kernels that write disjoint chunk outputs (or
// reduce per chunk and combine in chunk order) are bit-identical at every
// worker count, including zero spare tokens.
package parallel

import "sync"

// Budget is a shared pool of worker tokens. A nil *Budget is valid and means
// "no spare parallelism": every operation runs inline on the caller.
type Budget struct {
	tokens chan struct{}
}

// NewBudget returns a budget of n tokens. n ≤ 1 returns nil — one worker is
// the caller itself, so there is nothing to share.
func NewBudget(n int) *Budget {
	if n <= 1 {
		return nil
	}
	b := &Budget{tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
	return b
}

// Cap reports the budget's total token count (0 for nil).
func (b *Budget) Cap() int {
	if b == nil {
		return 0
	}
	return cap(b.tokens)
}

// Acquire blocks until a token is available. Level workers call it once per
// level so kernel borrowing can never oversubscribe past the budget.
func (b *Budget) Acquire() {
	if b != nil {
		<-b.tokens
	}
}

// TryAcquire takes a token without blocking, reporting whether it got one.
func (b *Budget) TryAcquire() bool {
	if b == nil {
		return false
	}
	select {
	case <-b.tokens:
		return true
	default:
		return false
	}
}

// tryAcquireN takes up to max tokens without blocking and returns how many it
// got.
func (b *Budget) tryAcquireN(max int) int {
	got := 0
	for got < max && b.TryAcquire() {
		got++
	}
	return got
}

// Release returns one token to the pool.
func (b *Budget) Release() {
	if b != nil {
		b.tokens <- struct{}{}
	}
}

// minGrain is the floor on chunk size: below it the chunk bookkeeping costs
// more than the work it would spread.
const minGrain = 256

// For runs fn over every chunk of [0, n) and returns the number of chunks.
// The decomposition is fixed by (n, grain) alone: chunks are
// [0,grain), [grain,2·grain), …, so the set of fn calls — and therefore any
// per-chunk output — is identical whether the chunks ran on one goroutine or
// many. Spare tokens (up to the budget) add helper goroutines that pull
// chunks from a shared counter; the caller always works too, so For never
// blocks on an empty budget. fn must treat chunks as independent: it may be
// called concurrently with itself for different chunks.
//
// Callers reducing across chunks must combine per-chunk partials in chunk
// order (see ForChunks) to stay deterministic; callers writing disjoint
// element ranges need nothing more.
func (b *Budget) For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < minGrain {
		grain = minGrain
	}
	chunks := (n + grain - 1) / grain
	if chunks == 1 {
		fn(0, n)
		return
	}
	helpers := 0
	if b != nil {
		want := chunks - 1
		if want > b.Cap() {
			want = b.Cap()
		}
		helpers = b.tryAcquireN(want)
	}
	if helpers == 0 {
		for c := 0; c < chunks; c++ {
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}
	var next atomicCounter
	work := func() {
		for {
			c := next.inc() - 1
			if c >= chunks {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	var wg sync.WaitGroup
	wg.Add(helpers)
	for h := 0; h < helpers; h++ {
		go func() {
			defer wg.Done()
			defer b.Release()
			work()
		}()
	}
	work()
	wg.Wait()
}

// NumChunks reports how many chunks For will decompose n into at the given
// grain — the size a per-chunk partial buffer needs.
func NumChunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < minGrain {
		grain = minGrain
	}
	return (n + grain - 1) / grain
}

// atomicCounter is a minimal atomic int64 counter.
type atomicCounter struct {
	mu sync.Mutex
	v  int
}

func (c *atomicCounter) inc() int {
	c.mu.Lock()
	c.v++
	v := c.v
	c.mu.Unlock()
	return v
}
