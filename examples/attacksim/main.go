// Attacksim compares fusion estimators and probes the attack's sensitivity
// to web noise — the ablation study behind the reproduction's extended
// benches: how much of the breach is the fuzzy machinery, and how robust is
// the pipeline to missing or noisy web data?
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/fusion"
	"repro/internal/web"
)

func main() {
	log.SetFlags(0)
	seed := flag.Int64("seed", 42, "scenario seed")
	k := flag.Int("k", 6, "anonymization level of the attacked release")
	flag.Parse()

	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	release, err := sc.Release(*k, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Attacking the k=%d release of a %d-person cohort.\n\n", *k, sc.P.NumRows())
	fmt.Println("Estimator comparison (lower after-dissimilarity = worse breach):")
	fmt.Println("  estimator     P∘P̂ (after)        gain G")
	estimators := []fusion.Estimator{
		fusion.Midpoint{},
		fusion.Rank{},
		fusion.NewFuzzy(),
	}
	for _, est := range estimators {
		_, before, after, err := sc.Attack(release, est)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s  %14.5g   %11.5g\n", est.Name(), after, before-after)
	}

	fmt.Println("\nWeb noise sensitivity (fuzzy estimator):")
	fmt.Println("  missing  typo  propnoise     P∘P̂ (after)        gain G")
	for _, cfg := range []web.GenOptions{
		{},
		{MissingProperty: 0.3, MissingEmployment: 0.3},
		{MissingProperty: 0.7, MissingEmployment: 0.7},
		{NameTypoProb: 0.5},
		{PropertyNoise: 0.4},
		{MissingProperty: 0.5, NameTypoProb: 0.5, PropertyNoise: 0.4},
	} {
		noisy, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: *seed, Web: cfg})
		if err != nil {
			log.Fatal(err)
		}
		rel, err := noisy.Release(*k, nil)
		if err != nil {
			log.Fatal(err)
		}
		_, before, after, err := noisy.Attack(rel, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %4.1f   %4.1f   %6.2f   %14.5g   %11.5g\n",
			cfg.MissingProperty, cfg.NameTypoProb, cfg.PropertyNoise, after, before-after)
	}
	fmt.Println("\nEven with heavy web noise the fused estimate stays below the no-fusion")
	fmt.Println("baseline: the attack degrades gracefully rather than failing.")
}
