// Composition demonstrates the sequential-release attack from the paper's
// related work ([16]-[18]): two honest k-anonymous releases of the same
// enterprise data, each safe on its own, intersect into something tighter
// than either — because enterprise releases keep the identifiers, the
// per-person join is exact.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/composition"
	"repro/internal/dataset"
	"repro/internal/microagg"
)

func main() {
	log.SetFlags(0)
	seed := flag.Int64("seed", 42, "scenario seed")
	k1 := flag.Int("k1", 4, "level of the first release")
	k2 := flag.Int("k2", 6, "level of the second release")
	flag.Parse()

	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	mk := func(k int) *dataset.Table {
		a := &microagg.Anonymizer{Opts: microagg.Options{Standardize: true, CentroidAsInterval: true}}
		rel, err := a.Anonymize(sc.P, k)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range rel.Schema().IndicesOf(dataset.Sensitive) {
			rel.SuppressColumn(c)
		}
		return rel
	}
	r1, r2 := mk(*k1), mk(*k2)

	merged, err := composition.Intersect(r1, r2)
	if err != nil {
		log.Fatal(err)
	}
	ratio, err := composition.Narrowing(merged, r1, r2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Two releases of the same cohort: k=%d and k=%d.\n", *k1, *k2)
	fmt.Printf("After intersection the quasi-identifier cells are on average\n")
	fmt.Printf("%.0f%% the width of the tightest single release (100%% = no leak).\n\n", 100*ratio)

	show := func(name string, rel *dataset.Table) {
		_, _, after, err := sc.Attack(rel, nil)
		if err != nil {
			log.Fatal(err)
		}
		a, err := sc.Assess(rel, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s P∘P̂ = %.4g   ±10%% breach %.0f%%\n", name, after, 100*a.Breach10)
	}
	show(fmt.Sprintf("release k=%d alone:", *k1), r1)
	show(fmt.Sprintf("release k=%d alone:", *k2), r2)
	show("intersected releases:", merged)
	fmt.Println("\nRepublishing the same data at a different level is itself a leak —")
	fmt.Println("FRED therefore picks ONE level and sticks to it.")
}
