// University reproduces the paper's Section 6 experiment on the synthetic
// faculty cohort: the level sweep behind Figures 4–7 and the FRED optimum of
// Figure 8, printed as aligned series.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)
	seed := flag.Int64("seed", 42, "cohort and corpus seed")
	n := flag.Int("n", 40, "number of faculty")
	maxK := flag.Int("maxk", 16, "largest anonymization level to sweep")
	flag.Parse()

	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: *seed, N: *n})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cohort: %d faculty, salaries in [$%.0f, $%.0f], %d web pages\n\n",
		sc.P.NumRows(), sc.SensitiveRange.Lo, sc.SensitiveRange.Hi, sc.Corpus.Len())

	levels, err := sc.Sweep(2, *maxK, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Level sweep (Figures 4-7):")
	fmt.Println("   k     P∘P' (before)      P∘P̂ (after)        gain G      utility U")
	for _, lr := range levels {
		fmt.Printf("  %2d   %14.5g   %14.5g   %11.5g   %10.6f\n",
			lr.K, lr.Before, lr.After, lr.Gain, lr.Utility)
	}

	res, err := sc.RunFRED(repro.FREDOptions{MaxK: *maxK})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFRED solution space (Figure 8):")
	fmt.Println("   k        H")
	for i, li := range res.Candidates {
		fmt.Printf("  %2d   %8.4f\n", res.Levels[li].K, res.H[i])
	}
	fmt.Printf("\nOptimal anonymization level: k = %d (H = %.4f)\n", res.OptimalK, res.Hmax)
	fmt.Println("The optimal release keeps identifiers, generalizes reviews, suppresses salary.")
}
