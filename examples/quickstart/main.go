// Quickstart: anonymize an enterprise table, simulate the web-based
// information-fusion attack against it, and print how much the adversary
// gained — the paper's storyline in thirty lines.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/web"
)

func main() {
	log.SetFlags(0)

	// The paper's Table II scenario: four customers, investment indexes as
	// quasi-identifiers, income sensitive, and a simulated web holding the
	// Table IV facts (employment, property holdings).
	sc, err := repro.TableIIScenario(web.GenOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Private enterprise data P (Table II):")
	fmt.Println(sc.P)

	// Internal release: 2-anonymize the quasi-identifiers, suppress income,
	// keep the customer names (the enterprise requirement of Section 1).
	release, err := sc.Release(2, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Anonymized internal release P' (Table III):")
	fmt.Println(release)

	fmt.Println("Auxiliary data Q gathered from the web (Table IV):")
	fmt.Println(sc.Q)

	// The attack: fuse P' with Q through the fuzzy inference system.
	phat, before, after, err := sc.Attack(release, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Adversary's estimate P̂ = F(P', Q):")
	fmt.Println(phat)

	fmt.Printf("Dissimilarity before fusion (P∘P'): %.4g\n", before)
	fmt.Printf("Dissimilarity after  fusion (P∘P̂): %.4g\n", after)
	fmt.Printf("Information gain G:                 %.4g\n", before-after)
	if after < before {
		fmt.Println("→ the fusion attack moved the adversary closer to the private data.")
	}
}
