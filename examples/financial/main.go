// Financial walks the paper's Section 1 worked example end to end with the
// actual machinery (not hand-waving): Table II → generalized Table III via
// full-domain k-anonymity → Table IV gathered from the simulated web →
// fuzzy-fused income estimates, including the paper's Robert anecdote
// (estimated ≈ $95,000 against a true $98,230).
package main

import (
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/internal/fusion"
	"repro/internal/hierarchy"
	"repro/internal/kanon"
	"repro/internal/linkage"
	"repro/internal/web"
)

func main() {
	log.SetFlags(0)

	p := datagen.TableII()
	fmt.Println("Table II — enterprise data:")
	fmt.Println(p)

	// Table III: generalize the 1-10 investment indexes through interval
	// ladders ([0-5], [5-10], ...) and suppress income.
	gens := make(map[string]hierarchy.Generalizer)
	for _, name := range []string{"InvstVol", "InvstAmt", "Valuation"} {
		l, err := hierarchy.NewLadder(0, 10, 5)
		if err != nil {
			log.Fatal(err)
		}
		gens[name] = l
	}
	anon := kanon.New(gens)
	res, err := anon.AnonymizeDetail(p, 2)
	if err != nil {
		log.Fatal(err)
	}
	release := res.Table
	release.SuppressColumn(release.Schema().MustLookup("Income"))
	fmt.Println("Table III — anonymized release (income suppressed, names kept):")
	fmt.Println(release)
	fmt.Printf("Chosen generalization levels: %v\n\n", res.Levels)

	// Table IV: the insider uses the names to search the (simulated) web.
	corpus, err := web.BuildCorpus(datagen.TableIIProfiles(), web.GenOptions{Seed: 2008, Distractors: 25})
	if err != nil {
		log.Fatal(err)
	}
	names := release.ColumnStrings(0)
	q, err := web.Gather(corpus, names, web.CorporateLadder, linkage.DefaultMatcher())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table IV — auxiliary data collected by the adversary:")
	fmt.Println(q)

	// Fuse: the Figure 2 system estimates each customer's income.
	incomeRange := fusion.Range{Lo: 40000, Hi: 100000}
	phat, err := fusion.Fuse(release, q, fusion.NewFuzzy(), incomeRange)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("P̂ — fused income estimates:")
	fmt.Println(phat)

	inc := p.Schema().MustLookup("Income")
	incHat := phat.Schema().MustLookup("Income")
	fmt.Println("Per-customer breach:")
	for i := 0; i < p.NumRows(); i++ {
		name, _ := p.Cell(i, 0).Text()
		truth := p.Cell(i, inc).MustFloat()
		est := phat.Cell(i, incHat).MustFloat()
		fmt.Printf("  %-10s true $%6.0f  estimated $%6.0f  error $%6.0f (%.1f%%)\n",
			name, truth, est, est-truth, 100*abs(est-truth)/truth)
	}
	fmt.Println("\nThe paper's anecdote: Robert, valuation in the top band plus CEO title")
	fmt.Println("and the largest property holdings, is pushed into the high income class —")
	fmt.Println("the release alone would have said only 'somewhere in [$40k, $100k]'.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
