// Adaptive demonstrates the defense side beyond Algorithm 1: the adaptive
// per-record anonymization the paper cites as its companion work [11]. It
// first quantifies record-level disclosure with the risk report, then runs
// the tighten-and-reattack loop and shows what residual exposure remains —
// the paper's closing point that fusion attacks can be mitigated but not
// entirely prevented.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)
	seed := flag.Int64("seed", 42, "scenario seed")
	k := flag.Int("k", 4, "base anonymization level")
	tol := flag.Float64("tol", 0.10, "relative error defining an exposed record")
	target := flag.Float64("target", 0.10, "acceptable exposed fraction")
	flag.Parse()

	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}

	release, err := sc.Release(*k, nil)
	if err != nil {
		log.Fatal(err)
	}
	report, err := sc.Assess(release, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Static k=%d release under the fusion attack:\n  %s\n\n", *k, report)

	res, err := sc.RunAdaptive(*k, *tol, *target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Adaptive defense (tol ±%.0f%%, target ≤%.0f%% exposed):\n", *tol*100, *target*100)
	fmt.Printf("  exposure %.0f%% → %.0f%% after %d rounds, %d records suppressed\n",
		100*res.ExposedBefore, 100*res.ExposedAfter, res.Rounds, len(res.Suppressed))
	fmt.Printf("  release utility at k=%d: %.5f\n", *k, res.Utility)
	if res.Exhausted {
		fmt.Println("  loop exhausted: the remaining exposed records are estimated from")
		fmt.Println("  web data alone — suppressing their release cells cannot help.")
		fmt.Println("  (This is the paper's conclusion: fusion attacks can be mitigated,")
		fmt.Println("  not entirely prevented.)")
	}

	adaptiveReport, err := sc.Assess(res.Release, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAdaptive release under the same attack:\n  %s\n", adaptiveReport)
}
