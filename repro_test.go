package repro

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/diversity"
	"repro/internal/fusion"
	"repro/internal/hierarchy"
	"repro/internal/kanon"
	"repro/internal/microagg"
	"repro/internal/web"
)

func TestUniversityScenario(t *testing.T) {
	sc, err := UniversityScenario(ScenarioOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if sc.P.NumRows() != 40 || sc.Q.NumRows() != 40 {
		t.Fatalf("P rows = %d, Q rows = %d", sc.P.NumRows(), sc.Q.NumRows())
	}
	if sc.Corpus.Len() < 40 {
		t.Errorf("corpus = %d pages", sc.Corpus.Len())
	}
	// Q is aligned with P by identifier.
	for i := 0; i < sc.P.NumRows(); i++ {
		pn, _ := sc.P.Cell(i, 0).Text()
		qn, _ := sc.Q.Cell(i, 0).Text()
		if pn != qn {
			t.Fatalf("row %d: P name %q vs Q name %q", i, pn, qn)
		}
	}
}

func TestFinancialScenario(t *testing.T) {
	sc, err := FinancialScenario(ScenarioOptions{Seed: 7, N: 24})
	if err != nil {
		t.Fatal(err)
	}
	if sc.P.NumRows() != 24 {
		t.Fatalf("rows = %d", sc.P.NumRows())
	}
	if sc.SensitiveRange.Hi != 100000 {
		t.Errorf("range = %+v", sc.SensitiveRange)
	}
}

func TestTableIIScenarioMatchesPaper(t *testing.T) {
	sc, err := TableIIScenario(web.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sc.P.NumRows() != 4 {
		t.Fatalf("rows = %d", sc.P.NumRows())
	}
	// The gathered Q reproduces Table IV's property holdings.
	pCol := sc.Q.Schema().MustLookup("PropertyHoldings")
	want := []float64{3560, 1200, 720, 5430}
	for i, w := range want {
		if got := sc.Q.Cell(i, pCol).MustFloat(); got != w {
			t.Errorf("row %d property = %g, want %g", i, got, w)
		}
	}
}

// reviewLadders builds numeric generalization ladders for the three
// university review quasi-identifiers.
func reviewLadders() (map[string]hierarchy.Generalizer, error) {
	out := make(map[string]hierarchy.Generalizer)
	for _, name := range []string{"Teaching", "Research", "Service"} {
		l, err := hierarchy.NewLadder(1, 10, 1)
		if err != nil {
			return nil, err
		}
		out[name] = l
	}
	return out, nil
}

func TestReleaseSuppressesSensitive(t *testing.T) {
	sc, err := UniversityScenario(ScenarioOptions{Seed: 1, N: 20})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := sc.Release(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	sal := rel.Schema().MustLookup("Salary")
	for i := 0; i < rel.NumRows(); i++ {
		if !rel.Cell(i, sal).IsNull() {
			t.Fatal("salary not suppressed")
		}
	}
	// k-anonymity over QIs.
	qis := rel.Schema().IndicesOf(dataset.QuasiIdentifier)
	for _, g := range rel.GroupBy(qis) {
		if len(g) < 3 {
			t.Errorf("class of %d < 3", len(g))
		}
	}
}

func TestScenarioAttackEndToEnd(t *testing.T) {
	sc, err := UniversityScenario(ScenarioOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := sc.Release(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	phat, before, after, err := sc.Attack(rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("fusion gained nothing: %g ≥ %g", after, before)
	}
	if phat.NumRows() != sc.P.NumRows() {
		t.Errorf("phat rows = %d", phat.NumRows())
	}
}

func TestRunFREDAutoCalibration(t *testing.T) {
	sc, err := UniversityScenario(ScenarioOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.RunFRED(FREDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimalK < 2 || res.OptimalK > 16 {
		t.Errorf("optimal k = %d", res.OptimalK)
	}
	if len(res.Candidates) < 2 {
		t.Errorf("solution space too small: %d candidates", len(res.Candidates))
	}
}

func TestRunFREDWithGeneralizationScheme(t *testing.T) {
	sc, err := UniversityScenario(ScenarioOptions{Seed: 9, N: 24})
	if err != nil {
		t.Fatal(err)
	}
	gens, err := reviewLadders()
	if err != nil {
		t.Fatal(err)
	}
	// Swap in full-domain generalization as Basic_Anonymization.
	a := kanon.New(gens)
	a.MaxSuppressFraction = 0.2
	res, err := sc.RunFRED(FREDOptions{Anonymizer: a, MaxK: 8, Estimator: fusion.Rank{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimalK < 2 {
		t.Errorf("optimal k = %d", res.OptimalK)
	}
}

func TestCalibrateThresholdsErrors(t *testing.T) {
	if _, _, err := CalibrateThresholds(nil); err == nil {
		t.Error("empty probe accepted")
	}
}

func TestScenarioAssess(t *testing.T) {
	sc, err := UniversityScenario(ScenarioOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := sc.Release(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sc.Assess(rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Records != 40 {
		t.Errorf("records = %d", a.Records)
	}
	// The fusion attack must at least match the midpoint guesser on class
	// disclosure, order most of the cohort correctly, and breach strictly
	// more records at ±10% than the no-fusion adversary.
	if a.Class3 < a.BaselineClass3 {
		t.Errorf("class hit %.2f below midpoint baseline %.2f", a.Class3, a.BaselineClass3)
	}
	if a.Rank < 0.5 {
		t.Errorf("rank exposure %.2f too low for correlated data", a.Rank)
	}
	if a.Breach20 <= 0 {
		t.Error("no record breached at ±20%, implausible for this cohort")
	}
	base, err := sc.Assess(rel, fusion.Midpoint{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Breach10 <= base.Breach10 {
		t.Errorf("fusion ±10%% breach %.2f not above midpoint %.2f", a.Breach10, base.Breach10)
	}
}

func TestScenarioRunAdaptive(t *testing.T) {
	sc, err := UniversityScenario(ScenarioOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.RunAdaptive(4, 0.10, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExposedAfter > res.ExposedBefore {
		t.Errorf("adaptive defense increased exposure: %.2f → %.2f",
			res.ExposedBefore, res.ExposedAfter)
	}
}

// TestDiversityGuardsDoNotStopFusion verifies the paper's related-work
// argument (Section 2): partition-quality guards such as t-closeness reason
// about the released equivalence classes, but the fusion breach flows
// through identifier-keyed web data — so a release can satisfy the guard and
// still leak through fusion.
func TestDiversityGuardsDoNotStopFusion(t *testing.T) {
	sc, err := UniversityScenario(ScenarioOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// The anonymized table before suppression (QIs generalized, salary
	// attached) is what diversity criteria inspect.
	anon, err := microagg.New().Anonymize(sc.P, 8)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := diversity.Distinct(anon, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied {
		t.Skipf("cohort does not satisfy 2-diversity at k=8; guard comparison not applicable")
	}
	// Even so, the fusion attack on the released (suppressed) version gains
	// information.
	rel, err := sc.Release(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, before, after, err := sc.Attack(rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("fusion gained nothing on a diverse release: %g ≥ %g", after, before)
	}
}
