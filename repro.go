// Package repro reproduces Ganta & Acharya, "On Breaching Enterprise Data
// Privacy Through Adversarial Information Fusion" (ICDE Workshops 2008,
// arXiv:0801.1715): the Web-Based Information-Fusion Attack on anonymized
// enterprise data and the FRED (Fusion Resilient Enterprise Data)
// anonymization algorithm.
//
// The package is a thin facade over the internal subsystems; it bundles the
// paper's two evaluation scenarios (the Table II financial example and the
// university faculty-salary experiment of Section 6) so examples, CLIs and
// benchmarks share one construction path.
//
//	sc, _ := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 40})
//	levels, _ := sc.Sweep(2, 16, nil, nil)      // Figures 4–7 series
//	res, _ := sc.RunFRED(repro.FREDOptions{})   // Figure 8 + optimal k
package repro

import (
	"context"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/linkage"
	"repro/internal/metrics"
	"repro/internal/microagg"
	"repro/internal/risk"
	"repro/internal/web"
)

// Scenario bundles everything the attack needs: the private table P, the
// ground-truth web profiles, the generated corpus, and the gathered
// auxiliary table Q (the paper's Table IV step already performed).
type Scenario struct {
	P              *dataset.Table
	Profiles       []web.Profile
	Corpus         *web.Corpus
	Q              *dataset.Table
	Ladder         web.Ladder
	SensitiveRange fusion.Range
	SensitiveCol   string
	// FeatureDomains fixes the fuzzy input ranges from domain knowledge,
	// aligned with fusion.Features' column order (release numeric QIs, then
	// aux Seniority and PropertyHoldings) — the Figure 2 convention.
	FeatureDomains []fusion.Range
}

// ScenarioOptions configures scenario construction.
type ScenarioOptions struct {
	// Seed drives both the dataset and the web corpus.
	Seed int64
	// N is the roster size (0 → scenario default: 40 faculty / 30
	// customers).
	N int
	// Web tunes corpus noise. Zero value means a clean corpus with 2·N
	// distractor pages.
	Web web.GenOptions
	// DirectAux derives the auxiliary table Q straight from the ground-truth
	// profiles instead of generating a corpus and web-gathering it — the
	// perfectly informed adversary. Million-row benchmarks use it: corpus
	// construction and gathering are O(roster × pages) and dominate at scale,
	// while the data plane under test (partitioning, fusion, metrics) never
	// sees the difference. Seniority is quantized through the ladder's title
	// vocabulary exactly as page extraction would report it; the scenario's
	// Corpus is left nil.
	DirectAux bool
}

// UniversityScenario builds the Section 6 experiment: faculty performance
// reviews (quasi-identifiers), salary (sensitive), homepages on the academic
// ladder.
func UniversityScenario(opts ScenarioOptions) (*Scenario, error) {
	p, profiles, err := datagen.University(datagen.UniversityConfig{Seed: opts.Seed, N: opts.N})
	if err != nil {
		return nil, err
	}
	return finishScenario(p, profiles, web.AcademicLadder, fusion.Range{Lo: 40000, Hi: 160000}, "Salary", opts)
}

// FinancialScenario builds an N-customer version of the Table II setting on
// the corporate ladder with income in [$40k, $100k].
func FinancialScenario(opts ScenarioOptions) (*Scenario, error) {
	n := opts.N
	if n == 0 {
		n = 30
	}
	p, profiles, err := datagen.Financial(datagen.FinancialConfig{Seed: opts.Seed, N: n})
	if err != nil {
		return nil, err
	}
	return finishScenario(p, profiles, web.CorporateLadder, fusion.Range{Lo: 40000, Hi: 100000}, "Income", opts)
}

// TableIIScenario builds the paper's four-customer worked example exactly
// (Tables II and IV).
func TableIIScenario(webOpts web.GenOptions) (*Scenario, error) {
	p := datagen.TableII()
	return finishScenario(p, datagen.TableIIProfiles(), web.CorporateLadder,
		fusion.Range{Lo: 40000, Hi: 100000}, "Income",
		ScenarioOptions{Seed: webOpts.Seed, Web: webOpts})
}

func finishScenario(p *dataset.Table, profiles []web.Profile, ladder web.Ladder, rng fusion.Range, sensitive string, opts ScenarioOptions) (*Scenario, error) {
	var corpus *web.Corpus
	var q *dataset.Table
	var err error
	if opts.DirectAux {
		q, err = directAux(profiles, ladder)
		if err != nil {
			return nil, err
		}
	} else {
		webOpts := opts.Web
		webOpts.Seed = opts.Seed
		if webOpts.Distractors == 0 {
			webOpts.Distractors = 2 * p.NumRows()
		}
		corpus, err = web.BuildCorpus(profiles, webOpts)
		if err != nil {
			return nil, err
		}
		q, err = web.Gather(corpus, p.ColumnStrings(0), ladder, linkage.DefaultMatcher())
		if err != nil {
			return nil, err
		}
	}
	// Domain knowledge for the fuzzy sets (Figure 2): every enterprise index
	// and the seniority score live on the public 1–10 scale; property
	// holdings on the public [200, 8000] index. One domain per numeric QI
	// of P, then the two numeric aux attributes.
	var domains []fusion.Range
	for _, i := range p.Schema().IndicesOf(dataset.QuasiIdentifier) {
		if p.Schema().Column(i).Kind == dataset.Number {
			domains = append(domains, fusion.Range{Lo: 1, Hi: 10})
		}
	}
	domains = append(domains, fusion.Range{Lo: 1, Hi: 10}, fusion.Range{Lo: 200, Hi: 8000})
	return &Scenario{
		P: p, Profiles: profiles, Corpus: corpus, Q: q,
		Ladder: ladder, SensitiveRange: rng, SensitiveCol: sensitive,
		FeatureDomains: domains,
	}, nil
}

// directAux builds Q from ground-truth profiles in Gather's exact layout:
// one row per roster entry in roster order, the title text in Employment,
// its ladder score in Seniority, the property index verbatim. Rows stream
// through the chunked builder, so a million-profile Q materializes without
// intermediate growth copies.
func directAux(profiles []web.Profile, ladder web.Ladder) (*dataset.Table, error) {
	b := dataset.NewBuilder(web.QSchema())
	row := make([]dataset.Value, 4)
	for _, p := range profiles {
		title := ladder.TitleFor(p.Seniority)
		score, ok := ladder.Score(title)
		row[0] = dataset.Str(p.Name)
		row[1] = dataset.Str(title)
		if ok {
			row[2] = dataset.Num(score)
		} else {
			row[2] = dataset.NullValue()
		}
		row[3] = dataset.Num(p.Property)
		if err := b.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return b.Table(), nil
}

// Estimator returns the scenario's default fusion system: the Figure 2
// fuzzy system with fixed domain-knowledge fuzzy sets.
func (s *Scenario) Estimator() fusion.Estimator {
	return &fusion.Fuzzy{Opts: fusion.FuzzyOptions{Domains: s.FeatureDomains}}
}

// attack returns the scenario's attack configuration with optional
// estimator override.
func (s *Scenario) attack(est fusion.Estimator) core.AttackConfig {
	if est == nil {
		est = s.Estimator()
	}
	return core.AttackConfig{Aux: s.Q, Estimator: est, SensitiveRange: s.SensitiveRange}
}

// Release anonymizes P at level k with the given scheme (nil → MDAV, the
// paper's choice) and suppresses the sensitive column — the internal
// enterprise release of Section 1.
func (s *Scenario) Release(k int, anon core.Anonymizer) (*dataset.Table, error) {
	if anon == nil {
		anon = microagg.New()
	}
	out, err := anon.Anonymize(s.P, k)
	if err != nil {
		return nil, err
	}
	for _, c := range out.Schema().IndicesOf(dataset.Sensitive) {
		out.SuppressColumn(c)
	}
	return out, nil
}

// Attack simulates the Web-Based Information-Fusion Attack on a release,
// returning P̂ and the before/after dissimilarities (nil estimator → fuzzy).
func (s *Scenario) Attack(release *dataset.Table, est fusion.Estimator) (phat *dataset.Table, before, after float64, err error) {
	return core.Attack(s.P, release, s.attack(est))
}

// Sweep evaluates levels minK..maxK (nil anonymizer → MDAV, nil estimator →
// fuzzy): the series behind Figures 4–7.
func (s *Scenario) Sweep(minK, maxK int, anon core.Anonymizer, est fusion.Estimator) ([]core.LevelResult, error) {
	if anon == nil {
		anon = microagg.New()
	}
	return core.Sweep(s.P, anon, s.attack(est), minK, maxK)
}

// SweepParallel is Sweep with the levels evaluated concurrently; results are
// identical to Sweep's. Workers bounds the concurrency (0 → one per level).
func (s *Scenario) SweepParallel(minK, maxK int, anon core.Anonymizer, est fusion.Estimator, workers int) ([]core.LevelResult, error) {
	if anon == nil {
		anon = microagg.New()
	}
	return core.SweepParallel(s.P, anon, s.attack(est), minK, maxK, workers)
}

// SweepStream streams levels minK..maxK in ascending k order as they
// complete on workers concurrent workers (0 → one per level), calling emit
// for each — the incremental form of Sweep, for consumers that want results
// before the sweep finishes. Cancelling ctx aborts the sweep; emit returning
// core.ErrStopSweep ends it early without error.
func (s *Scenario) SweepStream(ctx context.Context, minK, maxK int, anon core.Anonymizer, est fusion.Estimator, workers int, emit func(core.LevelResult) error) error {
	if anon == nil {
		anon = microagg.New()
	}
	return core.SweepStream(ctx, s.P, core.StreamConfig{
		Anonymizer: anon,
		Attack:     s.attack(est),
		MinK:       minK,
		MaxK:       maxK,
		Workers:    workers,
	}, emit)
}

// FREDOptions configures RunFRED. Zero values auto-calibrate thresholds the
// way the paper did — "based on experimental observations" — via a probe
// sweep (see CalibrateThresholds).
type FREDOptions struct {
	Anonymizer core.Anonymizer
	Estimator  fusion.Estimator
	Tp, Tu     float64
	HOpts      metrics.HOptions
	MinK, MaxK int
	// LiteralPaperLoop reproduces the pseudocode's literal stopping rule.
	LiteralPaperLoop bool
}

// RunFRED executes Algorithm 1 on the scenario.
func (s *Scenario) RunFRED(opts FREDOptions) (*core.Result, error) {
	anon := opts.Anonymizer
	if anon == nil {
		anon = microagg.New()
	}
	maxK := opts.MaxK
	if maxK == 0 {
		maxK = 16
	}
	tp, tu := opts.Tp, opts.Tu
	if tp == 0 && tu == 0 {
		probe, err := s.Sweep(2, maxK, anon, opts.Estimator)
		if err != nil {
			return nil, err
		}
		tp, tu, err = CalibrateThresholds(probe)
		if err != nil {
			return nil, err
		}
	}
	return core.Run(s.P, core.Config{
		Anonymizer:       anon,
		Attack:           s.attack(opts.Estimator),
		Tp:               tp,
		Tu:               tu,
		HOpts:            opts.HOpts,
		MinK:             opts.MinK,
		MaxK:             maxK,
		LiteralPaperLoop: opts.LiteralPaperLoop,
	})
}

// Assess attacks a release and reports record-level disclosure risk: the
// ±10%/±20% breach rates, the Low/Med/High class hit rate against the
// midpoint baseline, and rank exposure (internal/risk).
func (s *Scenario) Assess(release *dataset.Table, est fusion.Estimator) (*risk.Assessment, error) {
	phat, _, _, err := s.Attack(release, est)
	if err != nil {
		return nil, err
	}
	return risk.Assess(s.P, phat, s.SensitiveCol, s.SensitiveRange.Lo, s.SensitiveRange.Hi)
}

// RunAdaptive runs the adaptive (per-record) defense prototype of the
// paper's follow-up [11]: anonymize at base level k, then suppress the
// quasi-identifiers of the most precisely estimated records until at most
// maxExposed of the cohort is estimated within ±riskTol.
func (s *Scenario) RunAdaptive(k int, riskTol, maxExposed float64) (*core.AdaptiveResult, error) {
	return core.AdaptiveRun(s.P, core.AdaptiveConfig{
		Anonymizer:         microagg.New(),
		Attack:             s.attack(nil),
		K:                  k,
		RiskTol:            riskTol,
		MaxExposedFraction: maxExposed,
	})
}

// CalibrateThresholds derives (Tp, Tu) from a probe sweep so the solution
// space is an interior band of levels, mirroring the paper's Tp = 3.075e8,
// Tu = 0.0018 which carve k = 7..14 out of k = 2..16: Tp is the post-fusion
// dissimilarity one third into the sweep, Tu the utility five sixths in.
// It delegates to core.CalibrateThresholds, the single calibration policy
// shared with the serving layer.
func CalibrateThresholds(levels []core.LevelResult) (tp, tu float64, err error) {
	return core.CalibrateThresholds(levels)
}
