package repro

// Determinism under parallelism: the worker budget is a performance knob,
// never a semantics knob. These property tests drive both anonymization
// kernels and the full sweep over randomized datagen cohorts at several
// worker counts and require bit-identical output everywhere — the same group
// assignments row for row, and IEEE-754-equal level series. They complement
// the golden test (one pinned cohort) with fresh cohorts each run shape.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/microagg"
	"repro/internal/mondrian"
	"repro/internal/parallel"
)

var determinismWorkers = []int{1, 2, 8}

// assignFor runs the scheme's group-assignment kernel under the budget
// (nil budget = the plain sequential entry point).
func assignFor(t *testing.T, scheme string, sc *Scenario, k int, b *parallel.Budget) [][]int {
	t.Helper()
	var groups [][]int
	var err error
	switch scheme {
	case "mdav":
		a := microagg.New()
		if b == nil {
			groups, err = a.Assign(sc.P, k)
		} else {
			groups, err = a.AssignParallel(sc.P, k, b)
		}
	case "mondrian":
		a := mondrian.New()
		if b == nil {
			groups, err = a.Partition(sc.P, k)
		} else {
			groups, err = a.PartitionParallel(sc.P, k, b)
		}
	default:
		t.Fatalf("unknown scheme %q", scheme)
	}
	if err != nil {
		t.Fatal(err)
	}
	return groups
}

// TestGroupAssignmentDeterminism: for randomized cohorts, every worker count
// must produce exactly the sequential group structure — same groups, same
// order, same rows.
func TestGroupAssignmentDeterminism(t *testing.T) {
	for _, scheme := range []string{"mdav", "mondrian"} {
		for _, seed := range []int64{7, 23, 101} {
			for _, n := range []int{60, 350} {
				sc, err := UniversityScenario(ScenarioOptions{Seed: seed, N: n, DirectAux: true})
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range []int{2, 5, 11} {
					want := assignFor(t, scheme, sc, k, nil)
					for _, workers := range determinismWorkers {
						got := assignFor(t, scheme, sc, k, parallel.NewBudget(workers))
						if len(got) != len(want) {
							t.Fatalf("%s seed=%d n=%d k=%d workers=%d: %d groups, sequential made %d",
								scheme, seed, n, k, workers, len(got), len(want))
						}
						for g := range want {
							if len(got[g]) != len(want[g]) {
								t.Fatalf("%s seed=%d n=%d k=%d workers=%d: group %d sized %d, want %d",
									scheme, seed, n, k, workers, g, len(got[g]), len(want[g]))
							}
							for j := range want[g] {
								if got[g][j] != want[g][j] {
									t.Fatalf("%s seed=%d n=%d k=%d workers=%d: group %d row %d is %d, want %d",
										scheme, seed, n, k, workers, g, j, got[g][j], want[g][j])
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestSweepSeriesDeterminism: the full sweep series — anonymization, fusion
// attack, dissimilarities, utility — is IEEE-754 bit-equal at every worker
// count, for both schemes, on randomized cohorts.
func TestSweepSeriesDeterminism(t *testing.T) {
	for _, scheme := range []struct {
		name string
		anon core.Anonymizer
	}{
		{"mdav", microagg.New()},
		{"mondrian", mondrian.New()},
	} {
		for _, seed := range []int64{7, 23} {
			sc, err := UniversityScenario(ScenarioOptions{Seed: seed, N: 120, DirectAux: true})
			if err != nil {
				t.Fatal(err)
			}
			want, err := sc.Sweep(2, 12, scheme.anon, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range determinismWorkers {
				got, err := sc.SweepParallel(2, 12, scheme.anon, nil, workers)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s seed=%d workers=%d: %d levels, sequential made %d",
						scheme.name, seed, workers, len(got), len(want))
				}
				for i := range want {
					if got[i].K != want[i].K ||
						math.Float64bits(got[i].Before) != math.Float64bits(want[i].Before) ||
						math.Float64bits(got[i].After) != math.Float64bits(want[i].After) ||
						math.Float64bits(got[i].Gain) != math.Float64bits(want[i].Gain) ||
						math.Float64bits(got[i].Utility) != math.Float64bits(want[i].Utility) {
						t.Fatalf("%s seed=%d workers=%d: level k=%d diverged from sequential bits",
							scheme.name, seed, workers, want[i].K)
					}
				}
			}
		}
	}
}
