package repro

// Determinism under parallelism: the worker budget is a performance knob,
// never a semantics knob. These property tests drive both anonymization
// kernels and the full sweep over randomized datagen cohorts at several
// worker counts and require bit-identical output everywhere — the same group
// assignments row for row, and IEEE-754-equal level series. They complement
// the golden test (one pinned cohort) with fresh cohorts each run shape.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/microagg"
	"repro/internal/mondrian"
	"repro/internal/parallel"
)

var determinismWorkers = []int{1, 2, 8}

// assignFor runs the scheme's group-assignment kernel under the budget
// (nil budget = the plain sequential entry point).
func assignFor(t *testing.T, scheme string, sc *Scenario, k int, b *parallel.Budget) [][]int {
	t.Helper()
	var groups [][]int
	var err error
	switch scheme {
	case "mdav":
		a := microagg.New()
		if b == nil {
			groups, err = a.Assign(sc.P, k)
		} else {
			groups, err = a.AssignParallel(sc.P, k, b)
		}
	case "mondrian":
		a := mondrian.New()
		if b == nil {
			groups, err = a.Partition(sc.P, k)
		} else {
			groups, err = a.PartitionParallel(sc.P, k, b)
		}
	default:
		t.Fatalf("unknown scheme %q", scheme)
	}
	if err != nil {
		t.Fatal(err)
	}
	return groups
}

// TestGroupAssignmentDeterminism: for randomized cohorts, every worker count
// must produce exactly the sequential group structure — same groups, same
// order, same rows.
func TestGroupAssignmentDeterminism(t *testing.T) {
	for _, scheme := range []string{"mdav", "mondrian"} {
		for _, seed := range []int64{7, 23, 101} {
			for _, n := range []int{60, 350} {
				sc, err := UniversityScenario(ScenarioOptions{Seed: seed, N: n, DirectAux: true})
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range []int{2, 5, 11} {
					want := assignFor(t, scheme, sc, k, nil)
					for _, workers := range determinismWorkers {
						got := assignFor(t, scheme, sc, k, parallel.NewBudget(workers))
						if len(got) != len(want) {
							t.Fatalf("%s seed=%d n=%d k=%d workers=%d: %d groups, sequential made %d",
								scheme, seed, n, k, workers, len(got), len(want))
						}
						for g := range want {
							if len(got[g]) != len(want[g]) {
								t.Fatalf("%s seed=%d n=%d k=%d workers=%d: group %d sized %d, want %d",
									scheme, seed, n, k, workers, g, len(got[g]), len(want[g]))
							}
							for j := range want[g] {
								if got[g][j] != want[g][j] {
									t.Fatalf("%s seed=%d n=%d k=%d workers=%d: group %d row %d is %d, want %d",
										scheme, seed, n, k, workers, g, j, got[g][j], want[g][j])
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestSweepSeriesDeterminism: the full sweep series — anonymization, fusion
// attack, dissimilarities, utility — is IEEE-754 bit-equal at every worker
// count, for both schemes, on randomized cohorts.
func TestSweepSeriesDeterminism(t *testing.T) {
	for _, scheme := range []struct {
		name string
		anon core.Anonymizer
	}{
		{"mdav", microagg.New()},
		{"mondrian", mondrian.New()},
	} {
		for _, seed := range []int64{7, 23} {
			sc, err := UniversityScenario(ScenarioOptions{Seed: seed, N: 120, DirectAux: true})
			if err != nil {
				t.Fatal(err)
			}
			want, err := sc.Sweep(2, 12, scheme.anon, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range determinismWorkers {
				got, err := sc.SweepParallel(2, 12, scheme.anon, nil, workers)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s seed=%d workers=%d: %d levels, sequential made %d",
						scheme.name, seed, workers, len(got), len(want))
				}
				for i := range want {
					if got[i].K != want[i].K ||
						math.Float64bits(got[i].Before) != math.Float64bits(want[i].Before) ||
						math.Float64bits(got[i].After) != math.Float64bits(want[i].After) ||
						math.Float64bits(got[i].Gain) != math.Float64bits(want[i].Gain) ||
						math.Float64bits(got[i].Utility) != math.Float64bits(want[i].Utility) {
						t.Fatalf("%s seed=%d workers=%d: level k=%d diverged from sequential bits",
							scheme.name, seed, workers, want[i].K)
					}
				}
			}
		}
	}
}

// legacyOnly hides an estimator's batch face: embedding only the Estimator
// interface strips EstimateBatch, so fusion falls back to the row-at-a-time
// path. It turns any built-in estimator into its own reference
// implementation.
type legacyOnly struct{ fusion.Estimator }

// TestEstimatorSweepDeterminism pins the estimator axis of the batch attack
// plane: for every built-in estimator family, a sweep through the batch
// kernels at workers 1, 2 and 8 must be IEEE-754 bit-equal to the same sweep
// through the legacy row-at-a-time fusion path.
func TestEstimatorSweepDeterminism(t *testing.T) {
	sc, err := UniversityScenario(ScenarioOptions{Seed: 13, N: 120, DirectAux: true})
	if err != nil {
		t.Fatal(err)
	}
	// Calibration for the supervised estimators: the fusion features of the
	// un-anonymized release against Q, labelled with the true salaries — the
	// adversary's "leaked sample" — trimmed to a small prefix so KNN stays
	// cheap and the OLS fit stays overdetermined.
	rel := sc.P.WithSuppressed(sc.P.Schema().IndicesOf(dataset.Sensitive)...)
	feats, _, err := fusion.Features(rel, sc.Q)
	if err != nil {
		t.Fatal(err)
	}
	targets := sc.P.ColumnFloats(sc.P.Schema().MustLookup(sc.SensitiveCol), sc.SensitiveRange.Mid())
	calib, calibT := feats[:40], targets[:40]

	ests := map[string]func() fusion.Estimator{
		"fuzzy": func() fusion.Estimator {
			return &fusion.Fuzzy{Opts: fusion.FuzzyOptions{Domains: sc.FeatureDomains}}
		},
		"knn": func() fusion.Estimator {
			return &fusion.KNN{K: 5, CalibFeatures: calib, CalibTargets: calibT}
		},
		"regression": func() fusion.Estimator {
			return &fusion.Regression{CalibFeatures: calib, CalibTargets: calibT}
		},
		"ensemble": func() fusion.Estimator {
			return &fusion.Ensemble{
				Members: []fusion.Estimator{
					fusion.Midpoint{},
					fusion.Rank{},
					&fusion.KNN{K: 3, CalibFeatures: calib, CalibTargets: calibT},
				},
				Weights: []float64{1, 2, 3},
			}
		},
	}
	for name, mk := range ests {
		want, err := sc.Sweep(2, 10, nil, legacyOnly{mk()})
		if err != nil {
			t.Fatalf("%s: reference sweep: %v", name, err)
		}
		est := mk() // one estimator across worker counts, as a sweep would use it
		for _, workers := range determinismWorkers {
			got, err := sc.SweepParallel(2, 10, nil, est, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: %d levels, reference made %d", name, workers, len(got), len(want))
			}
			for i := range want {
				if got[i].K != want[i].K ||
					math.Float64bits(got[i].Before) != math.Float64bits(want[i].Before) ||
					math.Float64bits(got[i].After) != math.Float64bits(want[i].After) ||
					math.Float64bits(got[i].Gain) != math.Float64bits(want[i].Gain) ||
					math.Float64bits(got[i].Utility) != math.Float64bits(want[i].Utility) {
					t.Fatalf("%s workers=%d: level k=%d diverged from the row-at-a-time bits",
						name, workers, want[i].K)
				}
			}
		}
	}
}
