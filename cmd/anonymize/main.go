// Command anonymize k-anonymizes a CSV table with a chosen scheme and
// writes the release (sensitive columns suppressed, identifiers retained —
// the enterprise release of the paper's Section 1).
//
// Usage:
//
//	anonymize -in p.csv -out release.csv -k 6 [-scheme mdav|mondrian|kanon]
//	          [-keep-sensitive]
//
// The kanon scheme builds a numeric generalization ladder per quasi-
// identifier from its observed range (base width = range/8).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hierarchy"
	"repro/internal/kanon"
	"repro/internal/microagg"
	"repro/internal/mondrian"
)

func main() {
	log.SetFlags(0)
	in := flag.String("in", "", "input CSV (two-header layout)")
	out := flag.String("out", "release.csv", "output CSV")
	k := flag.Int("k", 2, "anonymity parameter")
	scheme := flag.String("scheme", "mdav", "mdav, mondrian or kanon")
	keepSensitive := flag.Bool("keep-sensitive", false, "do not suppress sensitive columns")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	t, err := readCSV(*in)
	if err != nil {
		log.Fatal(err)
	}
	anon, err := pickScheme(*scheme, t)
	if err != nil {
		log.Fatal(err)
	}
	release, err := anon.Anonymize(t, *k)
	if err != nil {
		log.Fatal(err)
	}
	if !*keepSensitive {
		for _, c := range release.Schema().IndicesOf(dataset.Sensitive) {
			release.SuppressColumn(c)
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, release); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d rows, scheme %s, k=%d\n", *out, release.NumRows(), anon.Name(), *k)
}

func pickScheme(name string, t *dataset.Table) (core.Anonymizer, error) {
	switch name {
	case "mdav":
		return microagg.New(), nil
	case "mondrian":
		return mondrian.New(), nil
	case "kanon":
		gens := make(map[string]hierarchy.Generalizer)
		for _, i := range t.Schema().IndicesOf(dataset.QuasiIdentifier) {
			col := t.Schema().Column(i)
			if col.Kind != dataset.Number {
				return nil, fmt.Errorf("kanon CLI scheme supports numeric quasi-identifiers only; %q is text", col.Name)
			}
			vals := t.ColumnFloats(i, 0)
			lo, hi := vals[0], vals[0]
			for _, v := range vals {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if hi == lo {
				hi = lo + 1
			}
			l, err := hierarchy.NewLadder(lo, hi, (hi-lo)/8)
			if err != nil {
				return nil, err
			}
			gens[col.Name] = l
		}
		a := kanon.New(gens)
		a.MaxSuppressFraction = 0.05
		return a, nil
	default:
		return nil, fmt.Errorf("unknown scheme %q", name)
	}
}

func readCSV(path string) (*dataset.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}
