// Command fred runs FRED Anonymization (Algorithm 1) over a private table
// and an auxiliary table: it sweeps anonymization levels, simulates the
// fusion attack at each, and emits the fusion-resilient release with the
// optimal level.
//
// Usage:
//
//	fred -p p.csv -q q.csv -lo 40000 -hi 160000 \
//	     [-tp T] [-tu T] [-mink 2] [-maxk 16] [-scheme mdav|mondrian] \
//	     [-out optimal.csv] [-literal-loop]
//
// When -tp and -tu are both zero, thresholds are auto-calibrated from a
// probe sweep the way the paper set them "based on experimental
// observations".
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/microagg"
	"repro/internal/mondrian"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	pPath := flag.String("p", "", "private table P CSV")
	qPath := flag.String("q", "", "auxiliary table Q CSV (optional)")
	lo := flag.Float64("lo", 0, "public lower bound of the sensitive attribute")
	hi := flag.Float64("hi", 0, "public upper bound of the sensitive attribute")
	tp := flag.Float64("tp", 0, "protection threshold Tp (0 = auto-calibrate)")
	tu := flag.Float64("tu", 0, "utility threshold Tu (0 = auto-calibrate)")
	minK := flag.Int("mink", 2, "first anonymization level")
	maxK := flag.Int("maxk", 16, "last anonymization level")
	scheme := flag.String("scheme", "mdav", "mdav or mondrian")
	out := flag.String("out", "", "optional output CSV for the optimal release")
	literal := flag.Bool("literal-loop", false, "use the pseudocode's literal stopping rule")
	markdown := flag.Bool("markdown", false, "emit the run report as Markdown")
	flag.Parse()
	if *pPath == "" || *hi <= *lo {
		flag.Usage()
		os.Exit(2)
	}

	p, err := readCSV(*pPath)
	if err != nil {
		log.Fatal(err)
	}
	var q *dataset.Table
	if *qPath != "" {
		if q, err = readCSV(*qPath); err != nil {
			log.Fatal(err)
		}
	}
	var anon core.Anonymizer
	switch *scheme {
	case "mdav":
		anon = microagg.New()
	case "mondrian":
		anon = mondrian.New()
	default:
		log.Fatalf("unknown scheme %q", *scheme)
	}
	atk := core.AttackConfig{Aux: q, SensitiveRange: fusion.Range{Lo: *lo, Hi: *hi}}

	useTp, useTu := *tp, *tu
	if useTp == 0 && useTu == 0 {
		probe, err := core.Sweep(p, anon, atk, *minK, *maxK)
		if err != nil {
			log.Fatal(err)
		}
		useTp, useTu, err = repro.CalibrateThresholds(probe)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("auto-calibrated thresholds: Tp = %.6g, Tu = %.6g\n", useTp, useTu)
	}

	res, err := core.Run(p, core.Config{
		Anonymizer:       anon,
		Attack:           atk,
		Tp:               useTp,
		Tu:               useTu,
		MinK:             *minK,
		MaxK:             *maxK,
		LiteralPaperLoop: *literal,
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := report.WriteFRED(os.Stdout, res, report.Options{Markdown: *markdown}); err != nil {
		log.Fatal(err)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := dataset.WriteCSV(f, res.Optimal); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote fusion-resilient release to %s\n", *out)
	}
}

func readCSV(path string) (*dataset.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}
