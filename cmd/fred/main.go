// Command fred runs FRED Anonymization (Algorithm 1) over a private table
// and an auxiliary table: it sweeps anonymization levels, simulates the
// fusion attack at each, and emits the fusion-resilient release with the
// optimal level.
//
// Usage:
//
//	fred -p p.csv -q q.csv -lo 40000 -hi 160000 \
//	     [-tp T] [-tu T] [-mink 2] [-maxk 16] [-scheme mdav|mondrian] \
//	     [-workers N] [-out optimal.csv] [-literal-loop]
//	     [-adaptive] [-kset 2,4,8] [-stride N] [-budget 30s]
//	     [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The sweep streams: levels print as a live table the moment each completes
// (in k order, even with -workers > 1), so a long sweep on a big cohort
// shows progress instead of going dark until the end. The sweep runs once —
// when -tp and -tu are both zero, thresholds are auto-calibrated from the
// streamed series the way the paper set them "based on experimental
// observations", with no second probe sweep.
//
// -adaptive, -kset, -stride and -budget switch to the adaptive planner
// (internal/core/planner): with explicit thresholds it bisects the Tu
// crossing instead of walking every level and prints which ranges it
// skipped and why; -kset / -stride restrict the evaluated set; -budget
// bounds wall-clock and reports the best partial release at the deadline.
// Adaptive rows print in evaluation order (probes jump around the range)
// and the decision uses the service's band semantics (both thresholds
// filter candidacy, no Tu truncation), bit-identical to an exhaustive
// adaptive run of the same spec.
//
// -cpuprofile and -memprofile write pprof profiles of the run (the heap
// profile is taken after the sweep, post-GC) for `go tool pprof`. Profiles
// are flushed only on successful exits — error paths leave at most a
// truncated file.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/core/planner"
	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/metrics"
	"repro/internal/microagg"
	"repro/internal/mondrian"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	pPath := flag.String("p", "", "private table P CSV")
	qPath := flag.String("q", "", "auxiliary table Q CSV (optional)")
	lo := flag.Float64("lo", 0, "public lower bound of the sensitive attribute")
	hi := flag.Float64("hi", 0, "public upper bound of the sensitive attribute")
	tp := flag.Float64("tp", 0, "protection threshold Tp (0 = auto-calibrate)")
	tu := flag.Float64("tu", 0, "utility threshold Tu (0 = auto-calibrate)")
	minK := flag.Int("mink", 2, "first anonymization level")
	maxK := flag.Int("maxk", 16, "last anonymization level")
	scheme := flag.String("scheme", "mdav", "mdav or mondrian")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = NumCPU)")
	out := flag.String("out", "", "optional output CSV for the optimal release")
	literal := flag.Bool("literal-loop", false, "use the pseudocode's literal stopping rule")
	markdown := flag.Bool("markdown", false, "emit the run report as Markdown")
	adaptive := flag.Bool("adaptive", false, "use the adaptive planner (bisect the Tu crossing instead of walking every level)")
	kset := flag.String("kset", "", "comma-separated explicit level set (adaptive; overrides -mink/-maxk)")
	stride := flag.Int("stride", 0, "evaluate every Nth level of the range (adaptive)")
	budget := flag.Duration("budget", 0, "wall-clock budget: stop at the deadline with the best partial release (adaptive)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken after the sweep) to this file")
	flag.Parse()
	if *pPath == "" || *hi <= *lo {
		flag.Usage()
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle live heap so the profile shows retention, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	p, err := readCSV(*pPath)
	if err != nil {
		log.Fatal(err)
	}
	var q *dataset.Table
	if *qPath != "" {
		if q, err = readCSV(*qPath); err != nil {
			log.Fatal(err)
		}
	}
	var anon core.Anonymizer
	switch *scheme {
	case "mdav":
		anon = microagg.New()
	case "mondrian":
		anon = mondrian.New()
	default:
		log.Fatalf("unknown scheme %q", *scheme)
	}
	atk := core.AttackConfig{Aux: q, SensitiveRange: fusion.Range{Lo: *lo, Hi: *hi}}
	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.NumCPU()
	}

	cfg := core.Config{
		Anonymizer:       anon,
		Attack:           atk,
		Tp:               *tp,
		Tu:               *tu,
		MinK:             *minK,
		MaxK:             *maxK,
		LiteralPaperLoop: *literal,
	}
	// With explicit thresholds the stopping rule is decidable per level, so
	// the stream halts the sweep the moment it fires — exactly Algorithm 1's
	// loop. Auto-calibration needs the full series first; the stop rule is
	// applied to the streamed levels afterwards, with no second sweep.
	explicit := *tp != 0 || *tu != 0

	var res *core.Result
	if *kset != "" || *stride > 1 || *budget > 0 || *adaptive {
		if *literal {
			log.Fatal("fred: -literal-loop applies to the classic range sweep only")
		}
		if *kset != "" && *stride > 1 {
			log.Fatal("fred: -kset and -stride are mutually exclusive")
		}
		res, err = runAdaptive(p, anon, atk, &cfg, nWorkers, *kset, *stride, *budget, explicit)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("sweeping k = %d..%d on %d workers\n", *minK, *maxK, nWorkers)
		fmt.Printf("%4s  %13s  %13s  %13s  %12s\n", "k", "P∘P' (before)", "P∘P̂ (after)", "gain G", "utility U")
		var levels []core.LevelResult
		err = core.SweepStream(context.Background(), p, core.StreamConfig{
			Anonymizer: anon,
			Attack:     atk,
			MinK:       *minK,
			MaxK:       *maxK,
			Workers:    nWorkers,
			Tp:         *tp,
		}, func(lr core.LevelResult) error {
			levels = append(levels, lr)
			fmt.Printf("%4d  %13.6g  %13.6g  %13.6g  %12.6g\n",
				lr.K, lr.Before, lr.After, lr.Gain, lr.Utility)
			if explicit && cfg.StopsAfter(lr) {
				return core.ErrStopSweep
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()

		if !explicit {
			cfg.Tp, cfg.Tu, err = repro.CalibrateThresholds(levels)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("auto-calibrated thresholds: Tp = %.6g, Tu = %.6g\n", cfg.Tp, cfg.Tu)
			// Truncate the series where Algorithm 1's stopping rule would have
			// ended the sweep under the calibrated thresholds.
			for i, lr := range levels {
				if cfg.StopsAfter(lr) {
					levels = levels[:i+1]
					break
				}
			}
		}

		if res, err = core.Decide(levels, cfg); err != nil {
			log.Fatal(err)
		}
	}

	if err := report.WriteFRED(os.Stdout, res, report.Options{Markdown: *markdown}); err != nil {
		log.Fatal(err)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := dataset.WriteCSV(f, res.Optimal); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote fusion-resilient release to %s\n", *out)
	}
}

// runAdaptive executes the sweep through the adaptive planner and decides
// with the band semantics (core.DecideWithin). cfg's thresholds are updated
// in place when auto-calibrated so the report reflects the values used.
func runAdaptive(p *dataset.Table, anon core.Anonymizer, atk core.AttackConfig, cfg *core.Config, workers int, kset string, stride int, budget time.Duration, explicit bool) (*core.Result, error) {
	set, err := parseKSet(kset)
	if err != nil {
		return nil, err
	}
	ks, err := planner.Expand(cfg.MinK, cfg.MaxK, stride, set)
	if err != nil {
		return nil, err
	}
	pcfg := planner.Config{
		Anonymizer:      anon,
		Attack:          atk,
		Levels:          ks,
		Tp:              cfg.Tp,
		Tu:              cfg.Tu,
		Workers:         workers,
		MinParallelRows: core.MinParallelSweepRows,
		Hooks: planner.Hooks{
			Level: func(lr core.LevelResult, _ bool) {
				fmt.Printf("%4d  %13.6g  %13.6g  %13.6g  %12.6g\n",
					lr.K, lr.Before, lr.After, lr.Gain, lr.Utility)
			},
			Fallback: func(reason string) {
				fmt.Printf("exhaustive fallback: %s\n", reason)
			},
		},
	}
	if budget > 0 {
		pcfg.Deadline = time.Now().Add(budget)
	}
	fmt.Printf("adaptive sweep over %d requested levels on %d workers\n", len(ks), workers)
	fmt.Printf("%4s  %13s  %13s  %13s  %12s\n", "k", "P∘P' (before)", "P∘P̂ (after)", "gain G", "utility U")
	out, err := planner.Run(context.Background(), p, pcfg)
	if err != nil {
		return nil, err
	}
	fmt.Println()
	for _, r := range out.SkippedRanges {
		fmt.Printf("skipped k = %d..%d (%s)\n", r.FromK, r.ToK, r.Reason)
	}
	if out.Partial {
		fmt.Println("budget expired: deciding over the levels evaluated in time")
	}
	fmt.Printf("evaluated %d of %d requested levels\n", out.Evaluated, out.Requested)
	if !explicit {
		if cfg.Tp, cfg.Tu, err = repro.CalibrateThresholds(out.Levels); err != nil {
			return nil, err
		}
		fmt.Printf("auto-calibrated thresholds: Tp = %.6g, Tu = %.6g\n", cfg.Tp, cfg.Tu)
	}
	return core.DecideWithin(out.Levels, cfg.Tp, cfg.Tu, metrics.DefaultHOptions())
}

// parseKSet parses the -kset flag: comma-separated anonymization levels.
func parseKSet(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("fred: bad -kset entry %q", part)
		}
		out = append(out, k)
	}
	return out, nil
}

func readCSV(path string) (*dataset.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}
