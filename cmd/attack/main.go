// Command attack simulates the Web-Based Information-Fusion Attack against
// a release: it fuses the anonymized release with an auxiliary table and
// reports the adversary's estimate and the dissimilarity metrics of the
// paper's Section 6.B.
//
// Usage:
//
//	attack -p p.csv -release release.csv [-q q.csv] -lo 40000 -hi 160000 \
//	       [-estimator fuzzy|rank|midpoint] [-out phat.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/fuzzy"
	"repro/internal/metrics"
	"repro/internal/risk"
)

func main() {
	log.SetFlags(0)
	pPath := flag.String("p", "", "private table P (ground truth) CSV")
	relPath := flag.String("release", "", "anonymized release P' CSV")
	qPath := flag.String("q", "", "auxiliary table Q CSV (optional)")
	lo := flag.Float64("lo", 0, "public lower bound of the sensitive attribute")
	hi := flag.Float64("hi", 0, "public upper bound of the sensitive attribute")
	estName := flag.String("estimator", "fuzzy", "fuzzy, rank or midpoint")
	fisPath := flag.String("fis", "", "run a hand-authored fuzzy system from a .fis file instead; input variables must be named after the feature columns (release QIs, then aux.<name>)")
	out := flag.String("out", "", "optional output CSV for the estimate P̂")
	report := flag.Bool("report", false, "print the record-level disclosure risk report")
	flag.Parse()
	if *pPath == "" || *relPath == "" || *hi <= *lo {
		flag.Usage()
		os.Exit(2)
	}

	p, err := readCSV(*pPath)
	if err != nil {
		log.Fatal(err)
	}
	release, err := readCSV(*relPath)
	if err != nil {
		log.Fatal(err)
	}
	var q *dataset.Table
	if *qPath != "" {
		if q, err = readCSV(*qPath); err != nil {
			log.Fatal(err)
		}
	}
	var est fusion.Estimator
	if *fisPath != "" {
		fh, err := os.Open(*fisPath)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := fuzzy.ParseFIS(fh, fuzzy.Options{})
		fh.Close()
		if err != nil {
			log.Fatal(err)
		}
		_, names, err := fusion.Features(release, q)
		if err != nil {
			log.Fatal(err)
		}
		est = &fusion.FIS{System: sys, FeatureNames: names}
	} else {
		switch *estName {
		case "fuzzy":
			est = fusion.NewFuzzy()
		case "rank":
			est = fusion.Rank{}
		case "midpoint":
			est = fusion.Midpoint{}
		default:
			log.Fatalf("unknown estimator %q", *estName)
		}
	}

	phat, before, after, err := core.Attack(p, release, core.AttackConfig{
		Aux:            q,
		Estimator:      est,
		SensitiveRange: fusion.Range{Lo: *lo, Hi: *hi},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dissimilarity before fusion (P∘P'): %.6g\n", before)
	fmt.Printf("dissimilarity after  fusion (P∘P̂): %.6g\n", after)
	fmt.Printf("information gain G:                  %.6g\n", metrics.InformationGain(before, after))
	if *report {
		sens := p.Schema().NamesOf(dataset.Sensitive)
		if len(sens) != 1 {
			log.Fatalf("risk report needs exactly one sensitive column, found %d", len(sens))
		}
		a, err := risk.Assess(p, phat, sens[0], *lo, *hi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("risk: %s\n", a)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := dataset.WriteCSV(f, phat); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote estimate to %s\n", *out)
	}
}

func readCSV(path string) (*dataset.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}
