// Command datagen generates the reproduction's synthetic datasets as CSV
// files: the private table P and the adversary's web-gathered auxiliary
// table Q (already linked to P's roster).
//
// Usage:
//
//	datagen -scenario university|financial|tableii [-seed N] [-n N] \
//	        [-p p.csv] [-q q.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/dataset"
	"repro/internal/web"
)

func main() {
	log.SetFlags(0)
	scenario := flag.String("scenario", "university", "university, financial or tableii")
	seed := flag.Int64("seed", 42, "generator seed")
	n := flag.Int("n", 0, "roster size (0 = scenario default)")
	pOut := flag.String("p", "p.csv", "output path for the private table P")
	qOut := flag.String("q", "q.csv", "output path for the auxiliary table Q")
	missing := flag.Float64("web-missing", 0, "probability a web attribute is missing")
	typos := flag.Float64("web-typos", 0, "probability a web page typos the subject's name")
	noise := flag.Float64("web-noise", 0, "relative noise on web property values")
	flag.Parse()

	opts := repro.ScenarioOptions{
		Seed: *seed,
		N:    *n,
		Web: web.GenOptions{
			MissingEmployment: *missing,
			MissingProperty:   *missing,
			NameTypoProb:      *typos,
			PropertyNoise:     *noise,
		},
	}
	var (
		sc  *repro.Scenario
		err error
	)
	switch *scenario {
	case "university":
		sc, err = repro.UniversityScenario(opts)
	case "financial":
		sc, err = repro.FinancialScenario(opts)
	case "tableii":
		sc, err = repro.TableIIScenario(opts.Web)
	default:
		log.Fatalf("unknown scenario %q", *scenario)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := writeCSV(*pOut, sc.P); err != nil {
		log.Fatal(err)
	}
	if err := writeCSV(*qOut, sc.Q); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d rows) and %s (%d rows); sensitive range [$%.0f, $%.0f]\n",
		*pOut, sc.P.NumRows(), *qOut, sc.Q.NumRows(), sc.SensitiveRange.Lo, sc.SensitiveRange.Hi)
}

func writeCSV(path string, t *dataset.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, t); err != nil {
		return err
	}
	return f.Close()
}
