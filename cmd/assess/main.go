// Command assess inspects tables and attack outcomes: it prints per-column
// summaries of any CSV table, the re-identification risk of a release, and
// (given the ground truth and an estimate) the record-level disclosure
// report.
//
// Usage:
//
//	assess -in table.csv                     # column summary + re-id risk
//	assess -in p.csv -est phat.csv -lo L -hi H [-markdown]
//	                                          # disclosure risk of an estimate
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/report"
	"repro/internal/risk"
)

func main() {
	log.SetFlags(0)
	in := flag.String("in", "", "table CSV (ground truth when -est is given)")
	est := flag.String("est", "", "estimate CSV (P̂) to assess against -in")
	lo := flag.Float64("lo", 0, "public lower bound of the sensitive attribute")
	hi := flag.Float64("hi", 0, "public upper bound of the sensitive attribute")
	markdown := flag.Bool("markdown", false, "emit Markdown")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	t, err := readCSV(*in)
	if err != nil {
		log.Fatal(err)
	}
	if *est == "" {
		fmt.Print(dataset.FormatSummary(t))
		mean, max, err := risk.ReidentificationRisk(t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("re-identification risk: mean %.4f, max %.4f\n", mean, max)
		return
	}

	if *hi <= *lo {
		log.Fatal("assess: -lo and -hi must bound the sensitive attribute")
	}
	phat, err := readCSV(*est)
	if err != nil {
		log.Fatal(err)
	}
	sens := t.Schema().NamesOf(dataset.Sensitive)
	if len(sens) != 1 {
		log.Fatalf("assess: ground truth needs exactly one sensitive column, found %d", len(sens))
	}
	a, err := risk.Assess(t, phat, sens[0], *lo, *hi)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.WriteAssessment(os.Stdout, a, report.Options{Markdown: *markdown}); err != nil {
		log.Fatal(err)
	}
}

func readCSV(path string) (*dataset.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}
