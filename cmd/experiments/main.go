// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 6) plus the worked example of Section 1, printing the
// same series the paper plots. See EXPERIMENTS.md for paper-vs-measured.
//
// Usage:
//
//	experiments [-fig all|2|4|5|6|7|8|tables] [-seed N] [-n N] [-maxk K]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/datagen"
	"repro/internal/hierarchy"
	"repro/internal/kanon"
	"repro/internal/linkage"
	"repro/internal/web"
)

func main() {
	log.SetFlags(0)
	fig := flag.String("fig", "all", "which figure to regenerate: all, tables, 2, 4, 5, 6, 7, 8")
	seed := flag.Int64("seed", 42, "scenario seed")
	n := flag.Int("n", 40, "university cohort size")
	maxK := flag.Int("maxk", 16, "largest anonymization level")
	flag.Parse()

	switch *fig {
	case "all":
		tables()
		fig2()
		sweepFigs(*seed, *n, *maxK, "4", "5", "6", "7")
		fig8(*seed, *n, *maxK)
	case "tables":
		tables()
	case "2":
		fig2()
	case "4", "5", "6", "7":
		sweepFigs(*seed, *n, *maxK, *fig)
	case "8":
		fig8(*seed, *n, *maxK)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
}

// tables prints the Section 1 worked example: Tables I-IV.
func tables() {
	fmt.Println("== Table I: sensitive database ==")
	fmt.Println(datagen.TableI())

	p := datagen.TableII()
	fmt.Println("== Table II: enterprise data ==")
	fmt.Println(p)

	gens := make(map[string]hierarchy.Generalizer)
	for _, name := range []string{"InvstVol", "InvstAmt", "Valuation"} {
		l, err := hierarchy.NewLadder(0, 10, 5)
		if err != nil {
			log.Fatal(err)
		}
		gens[name] = l
	}
	res, err := kanon.New(gens).AnonymizeDetail(p, 2)
	if err != nil {
		log.Fatal(err)
	}
	release := res.Table
	release.SuppressColumn(release.Schema().MustLookup("Income"))
	fmt.Println("== Table III: anonymized enterprise data (k=2 generalization) ==")
	fmt.Println(release)

	corpus, err := web.BuildCorpus(datagen.TableIIProfiles(), web.GenOptions{Seed: 2008, Distractors: 25})
	if err != nil {
		log.Fatal(err)
	}
	q, err := web.Gather(corpus, release.ColumnStrings(0), web.CorporateLadder, linkage.DefaultMatcher())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Table IV: auxiliary data collected by the adversary ==")
	fmt.Println(q)
}

// fig2 prints the structure of the fuzzy inference system (the paper's
// Figure 2) and demonstrates it on the Robert anecdote.
func fig2() {
	fmt.Println("== Figure 2: fuzzy inference system ==")
	sc, err := repro.TableIIScenario(web.GenOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Inputs : release QIs (InvstVol, InvstAmt, Valuation on [1,10])")
	fmt.Println("         web aux (Seniority on [1,10], PropertyHoldings on [200,8000])")
	fmt.Printf("Output : %s in [$%.0f, $%.0f], terms low/med/high\n",
		sc.SensitiveCol, sc.SensitiveRange.Lo, sc.SensitiveRange.Hi)
	fmt.Println("Rules  : IF x IS t THEN income IS t for every input x and term t,")
	fmt.Println("         uniform weights (Section 6.A); Mamdani min-AND, max-aggregation,")
	fmt.Println("         centroid defuzzification.")

	release, err := sc.Release(2, nil)
	if err != nil {
		log.Fatal(err)
	}
	phat, _, _, err := sc.Attack(release, nil)
	if err != nil {
		log.Fatal(err)
	}
	inc := phat.Schema().MustLookup("Income")
	truth := sc.P.Schema().MustLookup("Income")
	fmt.Println("\nPer-customer estimates on the Table II data:")
	for i := 0; i < phat.NumRows(); i++ {
		name, _ := phat.Cell(i, 0).Text()
		fmt.Printf("  %-10s estimated $%7.0f   true $%7.0f\n",
			name, phat.Cell(i, inc).MustFloat(), sc.P.Cell(i, truth).MustFloat())
	}
	fmt.Println()
}

// sweepFigs prints the level-sweep series behind Figures 4-7.
func sweepFigs(seed int64, n, maxK int, figs ...string) {
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: seed, N: n})
	if err != nil {
		log.Fatal(err)
	}
	levels, err := sc.Sweep(2, maxK, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	want := map[string]bool{}
	for _, f := range figs {
		want[f] = true
	}
	if want["4"] {
		fmt.Println("== Figure 4: dissimilarity before fusion (P∘P') vs k ==")
		fmt.Println("k\tP∘P'")
		for _, lr := range levels {
			fmt.Printf("%d\t%.6g\n", lr.K, lr.Before)
		}
		fmt.Println()
	}
	if want["5"] {
		fmt.Println("== Figure 5: dissimilarity after fusion (P∘P̂) vs k ==")
		fmt.Println("k\tP∘P̂")
		for _, lr := range levels {
			fmt.Printf("%d\t%.6g\n", lr.K, lr.After)
		}
		fmt.Println()
	}
	if want["6"] {
		fmt.Println("== Figure 6: information gain G = (P∘P') − (P∘P̂) vs k ==")
		fmt.Println("k\tG")
		for _, lr := range levels {
			fmt.Printf("%d\t%.6g\n", lr.K, lr.Gain)
		}
		fmt.Println()
	}
	if want["7"] {
		fmt.Println("== Figure 7: utility U_k = 1/C_DM(k) vs k ==")
		fmt.Println("k\tU")
		for _, lr := range levels {
			fmt.Printf("%d\t%.6g\n", lr.K, lr.Utility)
		}
		fmt.Println()
	}
}

// fig8 runs FRED and prints the weighted objective over the solution space.
func fig8(seed int64, n, maxK int) {
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: seed, N: n})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sc.RunFRED(repro.FREDOptions{MaxK: maxK})
	if err != nil {
		log.Fatal(err)
	}
	probe, err := sc.Sweep(2, maxK, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	tp, tu, err := repro.CalibrateThresholds(probe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Figure 8: weighted sum of protection and utility H vs k ==")
	fmt.Printf("(auto-calibrated thresholds: Tp = %.6g, Tu = %.6g; W1 = W2 = 0.5)\n", tp, tu)
	fmt.Println("k\tH")
	for i, li := range res.Candidates {
		fmt.Printf("%d\t%.4f\n", res.Levels[li].K, res.H[i])
	}
	fmt.Printf("\noptimal k = %d (H = %.4f)\n", res.OptimalK, res.Hmax)
}
