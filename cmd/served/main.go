// Command served runs the anonymization service daemon: the in-memory table
// store and async job engine of internal/service behind the REST API of
// internal/httpapi.
//
//	served -addr :8080 -workers 8 -cache 64
//
// Upload tables as two-header CSV, submit anonymize / attack / fred-sweep /
// assess jobs, poll, download results (see the repository README for curl
// examples). Sweeps execute on the streaming pipeline: follow a running
// job's per-level results live on GET /v1/jobs/{id}/events (Server-Sent
// Events; NDJSON with Accept: application/x-ndjson), or poll its status for
// the partial level series. Cancellation interrupts a sweep between levels,
// not just between jobs. SIGINT/SIGTERM drain in-flight jobs before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/httpapi"
	"repro/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "job worker pool size (0 = NumCPU)")
		sweepers = flag.Int("sweep-workers", 0, "per-job sweep concurrency (0 = workers)")
		cache    = flag.Int("cache", 64, "LRU result cache entries (negative disables)")
		queue    = flag.Int("queue", 256, "pending job queue depth")
		retain   = flag.Int("retain", 512, "finished jobs kept in the job log (negative keeps all)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "served ", log.LstdFlags)
	store := service.NewStore()
	engine := service.NewEngine(store, service.Options{
		Workers:         *workers,
		SweepWorkers:    *sweepers,
		QueueDepth:      *queue,
		CacheSize:       *cache,
		MaxFinishedJobs: *retain,
	})
	engine.Start()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.New(store, engine, logger),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Printf("listening on %s", *addr)

	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	logger.Printf("shutting down (budget %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := engine.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("engine shutdown: %v", err)
	}
	logger.Printf("bye")
}
