// Command served runs the anonymization service daemon: the table store and
// async job engine of internal/service behind the REST API of
// internal/httpapi.
//
//	served -addr :8080 -workers 8 -cache 64
//	served -addr :8080 -data-dir /var/lib/served -table-ttl 72h
//	served -addr :8080 -keys-file /etc/served/keys -quota-jobs 4
//
// With -keys-file the API is multi-tenant: each line of the file maps an
// API key to a tenant (`tenant key [tables=N] [jobs=N] [cache=N]`), every
// request must present its key (Authorization: Bearer, or X-API-Key), and
// each tenant sees only its own tables, jobs and event streams. The
// -quota-* flags set the default per-tenant quotas; the optional key-file
// fields override them per tenant. Without -keys-file the API is open and
// single-namespace, as before.
//
// Upload tables as two-header CSV, submit anonymize / attack / fred-sweep /
// assess jobs, poll, download results (see the repository README for curl
// examples). Sweeps execute on the streaming pipeline: follow a running
// job's per-level results live on GET /v1/jobs/{id}/events (Server-Sent
// Events; NDJSON with Accept: application/x-ndjson), reconnect with
// Last-Event-ID / ?after= to skip the replay, or poll its status for the
// partial level series. Cancellation interrupts a sweep between levels, not
// just between jobs. SIGINT/SIGTERM drain in-flight jobs before exit.
//
// With -data-dir the storage plane is durable: tables persist as columnar
// snapshots, the job log as a write-ahead log with per-level sweep
// checkpoints. After a crash — kill -9 included — the next boot reloads
// every table, restores finished jobs (results included) and re-submits
// interrupted fred-sweeps with a resume point, so they continue from their
// last checkpointed level and finish byte-identical to an uninterrupted
// run. -table-ttl evicts tables unreferenced by live jobs after the given
// age.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/service/diskstore"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "job worker pool size (0 = NumCPU)")
		sweepers = flag.Int("sweep-workers", 0, "per-job sweep concurrency (0 = workers)")
		cache    = flag.Int("cache", 64, "LRU result cache entries (negative disables)")
		queue    = flag.Int("queue", 256, "pending job queue depth")
		retain   = flag.Int("retain", 512, "finished jobs kept in the job log (negative keeps all)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		dataDir  = flag.String("data-dir", "", "durable storage directory (empty = in-memory only)")
		tableTTL = flag.Duration("table-ttl", 0, "evict tables unreferenced by live jobs after this age (0 disables)")
		keysFile = flag.String("keys-file", "", "API key file enabling multi-tenant auth (empty = open, single namespace)")
		qTables  = flag.Int("quota-tables", 0, "default per-tenant max resident tables (0 = unlimited)")
		qJobs    = flag.Int("quota-jobs", 0, "default per-tenant max concurrent jobs (0 = unlimited)")
		qCache   = flag.Int("quota-cache", 0, "default per-tenant result-cache share (0 = unlimited)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "served ", log.LstdFlags)

	var serverOpts []httpapi.Option
	quotas := &service.Quotas{
		Default: service.Quota{MaxTables: *qTables, MaxJobs: *qJobs, CacheShare: *qCache},
	}
	if *keysFile != "" {
		cfg, err := httpapi.LoadKeysFile(*keysFile)
		if err != nil {
			logger.Fatalf("load keys file: %v", err)
		}
		quotas.PerTenant = cfg.Quotas
		serverOpts = append(serverOpts, httpapi.WithAuth(cfg.Auth))
		logger.Printf("multi-tenant auth enabled (%d tenant quota overrides)", len(cfg.Quotas))
	}

	opts := service.Options{
		Workers:         *workers,
		SweepWorkers:    *sweepers,
		QueueDepth:      *queue,
		CacheSize:       *cache,
		MaxFinishedJobs: *retain,
		Quotas:          quotas,
	}
	var store *service.Store
	var ds *diskstore.Store
	if *dataDir != "" {
		var err error
		if ds, err = diskstore.Open(*dataDir); err != nil {
			logger.Fatalf("open data dir: %v", err)
		}
		store = service.NewStoreWith(ds)
		opts.JobLog = ds
	} else {
		store = service.NewStore()
	}
	if err := store.Open(); err != nil {
		logger.Fatalf("load tables: %v", err)
	}
	engine := service.NewEngine(store, opts)
	// Recover before Start and before serving: restored jobs reclaim their
	// IDs and interrupted sweeps enqueue with their resume points.
	recovered, err := engine.Recover()
	if err != nil {
		logger.Fatalf("recover job log: %v", err)
	}
	if *dataDir != "" {
		resumed := 0
		for _, rj := range recovered {
			if rj.Resumed {
				resumed++
				if n := len(rj.Status.Levels); n > 0 {
					logger.Printf("resuming interrupted %s %s at k=%d (%d levels checkpointed)",
						rj.Status.Type, rj.Status.ID, rj.Status.Levels[n-1].K+1, n)
				} else {
					logger.Printf("re-running interrupted %s %s from the start", rj.Status.Type, rj.Status.ID)
				}
			}
		}
		logger.Printf("recovered %d tables, %d jobs (%d resumed) from %s",
			len(store.ListAll()), len(recovered), resumed, *dataDir)
	}
	engine.Start()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *tableTTL > 0 {
		interval := *tableTTL / 4
		if interval < time.Second {
			interval = time.Second
		}
		if interval > time.Minute {
			interval = time.Minute
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					for _, info := range engine.EvictTables(*tableTTL) {
						logger.Printf("evicted table %s/%s (%s, age > %s)", info.Tenant, info.ID, info.Name, *tableTTL)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.New(store, engine, logger, serverOpts...),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Printf("listening on %s", *addr)

	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	logger.Printf("shutting down (budget %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := engine.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("engine shutdown: %v", err)
	}
	if ds != nil {
		if err := ds.Close(); err != nil {
			logger.Printf("close data dir: %v", err)
		}
	}
	logger.Printf("bye")
}
