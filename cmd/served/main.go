// Command served runs the anonymization service daemon: the table store and
// async job engine of internal/service behind the REST API of
// internal/httpapi.
//
//	served -addr :8080 -workers 8 -cache 64
//	served -addr :8080 -data-dir /var/lib/served -table-ttl 72h
//	served -addr :8080 -keys-file /etc/served/keys -quota-jobs 4
//	served -addr :8080 -pprof-addr 127.0.0.1:6060 -log-level debug
//
// With -keys-file the API is multi-tenant: each line of the file maps an
// API key to a tenant (`tenant key [tables=N] [jobs=N] [cache=N] [rate=R]
// [burst=N]`), every request must present its key (Authorization: Bearer,
// or X-API-Key), and each tenant sees only its own tables, jobs and event
// streams. The -quota-* flags set the default per-tenant quotas; the
// optional key-file fields override them per tenant, and rate=/burst=
// attach a token-bucket request limit to that key (refusals are 429 with
// Retry-After). SIGHUP reloads the keys file in place — keys, rate limits
// and quota overrides — without dropping in-flight requests; a file that
// fails to parse leaves the previous configuration in force. Without
// -keys-file the API is open and single-namespace, as before.
//
// The daemon applies admission control to job submissions: -max-pending
// bounds each tenant's queued-but-unstarted jobs and -queue the global
// backlog; submissions past either bound are shed with 429 Too Many
// Requests and a load-derived Retry-After rather than queued without bound.
// -retain-events truncates terminal jobs' event buffers to a bounded tail
// once their result is durable (reconnecting streams past the truncation
// replay from the result instead).
//
// Upload tables as two-header CSV, submit anonymize / attack / fred-sweep /
// assess jobs, poll, download results (see the repository README for curl
// examples). Sweeps execute on the streaming pipeline: follow a running
// job's per-level results live on GET /v1/jobs/{id}/events (Server-Sent
// Events; NDJSON with Accept: application/x-ndjson), reconnect with
// Last-Event-ID / ?after= to skip the replay, or poll its status for the
// partial level series. Cancellation interrupts a sweep between levels, not
// just between jobs. SIGINT/SIGTERM drain in-flight jobs before exit.
// fred-sweep specs may carry the adaptive planner fields (k_set, stride,
// budget_ms, adaptive); levels any earlier sweep of the same table already
// computed are warm-started from the cross-job level index (-level-index
// bounds how many tables it remembers).
//
// With -data-dir the storage plane is durable: tables persist as columnar
// snapshots, the job log as a write-ahead log with per-level sweep
// checkpoints. After a crash — kill -9 included — the next boot reloads
// every table, restores finished jobs (results included) and re-submits
// interrupted fred-sweeps with a resume point, so they continue from their
// last checkpointed level and finish byte-identical to an uninterrupted
// run. -table-ttl evicts tables unreferenced by live jobs after the given
// age. The WAL is segmented: -wal-rotate-bytes / -wal-rotate-age roll the
// active segment, -wal-compact periodically rewrites the whole log down to
// its live image online, and -blob-gc sweeps result blobs no live job,
// cached result or table still references (-blob-gc-dry-run reports what
// would be reclaimed without deleting).
//
// The daemon is fully observable: GET /metrics serves a Prometheus text
// exposition covering the HTTP layer, the job engine, the result cache and
// the WAL; GET /v1/jobs/{id}/trace returns a job's recorded spans; every
// log line is structured (log/slog) and carries request_id=, tenant= and
// job= attributes where they apply. -pprof-addr serves net/http/pprof on a
// separate (ideally loopback) listener, keeping the profiler off the public
// API port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers on DefaultServeMux
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/diskstore"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "job worker pool size (0 = NumCPU)")
		sweepers  = flag.Int("sweep-workers", 0, "per-job sweep concurrency (0 = workers)")
		cache     = flag.Int("cache", 64, "LRU result cache entries (negative disables)")
		levelIdx  = flag.Int("level-index", 32, "cross-job level-index tables for sweep warm-starts (negative disables)")
		queue     = flag.Int("queue", 256, "pending job queue depth (global admission bound)")
		maxPend   = flag.Int("max-pending", 64, "per-tenant pending job bound (0 = unlimited)")
		retain    = flag.Int("retain", 512, "finished jobs kept in the job log (negative keeps all)")
		retainEvs = flag.Int("retain-events", 256, "per-job event tail kept after the result is durable (negative keeps all)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		dataDir   = flag.String("data-dir", "", "durable storage directory (empty = in-memory only)")
		tableTTL  = flag.Duration("table-ttl", 0, "evict tables unreferenced by live jobs after this age (0 disables)")
		walRotB   = flag.Int64("wal-rotate-bytes", 4<<20, "roll the WAL segment past this size (0 disables the size trigger)")
		walRotAge = flag.Duration("wal-rotate-age", 0, "roll the WAL segment past this age (0 disables the age trigger)")
		walComp   = flag.Duration("wal-compact", 0, "rewrite the WAL to its live image at this interval (0 disables)")
		blobGC    = flag.Duration("blob-gc", 0, "sweep unreferenced result blobs at this interval (0 disables)")
		blobGCDry = flag.Bool("blob-gc-dry-run", false, "report reclaimable blobs without deleting them")
		keysFile  = flag.String("keys-file", "", "API key file enabling multi-tenant auth (empty = open, single namespace)")
		qTables   = flag.Int("quota-tables", 0, "default per-tenant max resident tables (0 = unlimited)")
		qJobs     = flag.Int("quota-jobs", 0, "default per-tenant max concurrent jobs (0 = unlimited)")
		qCache    = flag.Int("quota-cache", 0, "default per-tenant result-cache share (0 = unlimited)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled; bind loopback)")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	)
	flag.Parse()

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)
	fatalf := func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
		os.Exit(1)
	}

	// One registry and one tracer span every layer, so a single /metrics
	// scrape (and a single trace ring) covers HTTP, engine, cache and WAL.
	registry := obs.NewRegistry()
	tracer := obs.NewTracer(obs.DefaultTraceCapacity)

	serverOpts := []httpapi.Option{httpapi.WithMetrics(registry), httpapi.WithTracer(tracer)}
	quotas := &service.Quotas{
		Default: service.Quota{MaxTables: *qTables, MaxJobs: *qJobs, CacheShare: *qCache},
	}
	if *keysFile != "" {
		cfg, err := httpapi.LoadKeysFile(*keysFile)
		if err != nil {
			fatalf("load keys file: %v", err)
		}
		quotas.PerTenant = cfg.Quotas
		serverOpts = append(serverOpts, httpapi.WithAuth(cfg.Auth))
		logger.Info("multi-tenant auth enabled", "quota_overrides", len(cfg.Quotas))
	}

	opts := service.Options{
		Workers:             *workers,
		SweepWorkers:        *sweepers,
		QueueDepth:          *queue,
		MaxPendingPerTenant: *maxPend,
		MaxJobEvents:        *retainEvs,
		CacheSize:           *cache,
		LevelIndexSize:      *levelIdx,
		MaxFinishedJobs:     *retain,
		Quotas:              quotas,
		Metrics:             registry,
		Tracer:              tracer,
		Logger:              logger,
	}
	var store *service.Store
	var ds *diskstore.Store
	if *dataDir != "" {
		var err error
		ds, err = diskstore.Open(*dataDir,
			diskstore.WithMetrics(registry),
			diskstore.WithWALRotation(*walRotB, *walRotAge))
		if err != nil {
			fatalf("open data dir: %v", err)
		}
		store = service.NewStoreWith(ds)
		opts.JobLog = ds
	} else {
		store = service.NewStore()
	}
	if err := store.Open(); err != nil {
		fatalf("load tables: %v", err)
	}
	engine := service.NewEngine(store, opts)
	// Recover before Start and before serving: restored jobs reclaim their
	// IDs and interrupted sweeps enqueue with their resume points. The
	// engine reports unready (503 on /v1/readyz) for this whole window.
	recovered, err := engine.Recover()
	if err != nil {
		fatalf("recover job log: %v", err)
	}
	if *dataDir != "" {
		resumed := 0
		for _, rj := range recovered {
			if rj.Resumed {
				resumed++
				if n := len(rj.Status.Levels); n > 0 {
					logger.Info("resuming interrupted job",
						"type", rj.Status.Type, "job", rj.Status.ID,
						"start_k", rj.Status.Levels[n-1].K+1, "checkpointed_levels", n)
				} else {
					logger.Info("re-running interrupted job",
						"type", rj.Status.Type, "job", rj.Status.ID)
				}
			}
		}
		logger.Info("recovered durable state",
			"tables", len(store.ListAll()), "jobs", len(recovered),
			"resumed", resumed, "data_dir", *dataDir)
	}
	engine.Start()

	api := httpapi.New(store, engine, logger, serverOpts...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *keysFile != "" {
		// SIGHUP reloads the keys file in place: new keys, rate limits and
		// quota overrides apply to the next request, in-flight requests
		// finish under the configuration they started with. A file that no
		// longer parses keeps the previous configuration — a reload must
		// never fail open.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for {
				select {
				case <-hup:
					cfg, err := httpapi.LoadKeysFile(*keysFile)
					if err != nil {
						logger.Error("keys reload failed, keeping previous keys", "error", err)
						continue
					}
					api.SetAuth(cfg.Auth)
					quotas.SetPerTenant(cfg.Quotas)
					logger.Info("reloaded keys file",
						"path", *keysFile, "quota_overrides", len(cfg.Quotas))
				case <-ctx.Done():
					signal.Stop(hup)
					return
				}
			}
		}()
	}

	if *walComp > 0 && ds != nil {
		go func() {
			tick := time.NewTicker(*walComp)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if err := engine.CompactLog(); err != nil {
						logger.Error("wal compaction", "error", err)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	if *blobGC > 0 && ds != nil {
		go func() {
			tick := time.NewTicker(*blobGC)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					rep, err := engine.GCBlobs(*blobGCDry)
					if err != nil {
						logger.Error("blob gc", "error", err)
						continue
					}
					if rep.Reclaimed > 0 || rep.DryRun && len(rep.Unreferenced) > 0 {
						logger.Info("blob gc swept",
							"scanned", rep.Scanned, "reclaimed", rep.Reclaimed,
							"bytes", rep.BytesReclaimed, "dry_run", rep.DryRun)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	if *tableTTL > 0 {
		interval := *tableTTL / 4
		if interval < time.Second {
			interval = time.Second
		}
		if interval > time.Minute {
			interval = time.Minute
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					for _, info := range engine.EvictTables(*tableTTL) {
						logger.Info("evicted table",
							"tenant", info.Tenant, "id", info.ID, "name", info.Name, "ttl", *tableTTL)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	if *pprofAddr != "" {
		// pprof rides DefaultServeMux on its own listener: profiles stay off
		// the API port, so exposure is a deployment decision (bind loopback),
		// not an API-surface one.
		go func() {
			pprofSrv := &http.Server{Addr: *pprofAddr, Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof serve", "error", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)

	select {
	case err := <-errc:
		fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	logger.Info("shutting down", "budget", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	if err := engine.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("engine shutdown", "error", err)
	}
	if ds != nil {
		if err := ds.Close(); err != nil {
			logger.Warn("close data dir", "error", err)
		}
	}
	// The final snapshot is the last line an operator sees: what this
	// process accomplished and where the durable log stands.
	stats := engine.Stats()
	logger.Info("bye", "jobs_finished", stats.JobsFinished, "wal_seq", stats.WALSeq)
}

// parseLevel maps the -log-level flag onto a slog level.
func parseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("served: unknown -log-level %q (want debug, info, warn or error)", s)
}
