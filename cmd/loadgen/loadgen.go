package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro"
	"repro/internal/dataset"
	"repro/internal/service"
)

// Config drives one load run: the target server, the tenants (key → tenant
// pairs; an empty Keys list runs unauthenticated as the default tenant),
// and the offered load shape.
type Config struct {
	// Addr is the server base URL, e.g. http://127.0.0.1:8080.
	Addr string
	// Tenants lists the identities to drive. Empty = one unauthenticated
	// tenant.
	Tenants []TenantKey
	// WorkersPerTenant is the submit loops each tenant runs concurrently.
	WorkersPerTenant int
	// Duration bounds the run.
	Duration time.Duration
	// Rows sizes each tenant's generated scenario tables.
	Rows int
	// Seed makes the generated tables and the job mix reproducible.
	Seed int64
	// AttackFraction is the share of submissions that are attack jobs; the
	// rest are fred-sweeps. Sweeps are the heavy workload, attacks the
	// cheap one, so the mix exercises both queue residency profiles.
	AttackFraction float64
	// PollInterval is the status poll cadence (default 25ms).
	PollInterval time.Duration
}

// TenantKey names one identity: the API key presented and the tenant it
// should resolve to (informational; the server decides).
type TenantKey struct {
	Tenant string
	Key    string
}

// Report is one run's outcome: counts, completion-latency percentiles and
// the shed rate (429 responses over submit attempts).
type Report struct {
	Tenants   int           `json:"tenants"`
	Submitted int           `json:"submitted"`
	Completed int           `json:"completed"`
	Failed    int           `json:"failed"`
	Shed      int           `json:"shed"`
	ShedRate  float64       `json:"shed_rate"`
	P50       time.Duration `json:"p50"`
	P95       time.Duration `json:"p95"`
	P99       time.Duration `json:"p99"`
	Elapsed   time.Duration `json:"elapsed"`
}

func (r *Report) String() string {
	return fmt.Sprintf(
		"tenants=%d submitted=%d completed=%d failed=%d shed=%d shed_rate=%.3f p50=%s p95=%s p99=%s elapsed=%s",
		r.Tenants, r.Submitted, r.Completed, r.Failed, r.Shed, r.ShedRate,
		r.P50.Round(time.Millisecond), r.P95.Round(time.Millisecond),
		r.P99.Round(time.Millisecond), r.Elapsed.Round(time.Millisecond))
}

// collector accumulates worker outcomes under one mutex; the contention is
// negligible next to the HTTP round trips.
type collector struct {
	mu        sync.Mutex
	submitted int
	completed int
	failed    int
	shed      int
	latencies []time.Duration
}

// run executes one load generation pass and reports what happened. It is
// the whole harness behind the CLI so tests can drive it against an
// in-process httptest server.
func run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.WorkersPerTenant <= 0 {
		cfg.WorkersPerTenant = 2
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Rows <= 0 {
		cfg.Rows = 30
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 25 * time.Millisecond
	}
	if cfg.AttackFraction < 0 || cfg.AttackFraction > 1 {
		return nil, fmt.Errorf("loadgen: attack fraction %v outside [0,1]", cfg.AttackFraction)
	}
	tenants := cfg.Tenants
	if len(tenants) == 0 {
		tenants = []TenantKey{{Tenant: service.DefaultTenant}}
	}

	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	deadline, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	// Setup phase: each tenant uploads its own P and Q tables. Distinct
	// seeds per tenant keep the tables (and thus result-cache keys)
	// distinct across tenants.
	type tenantTables struct {
		key  string
		pID  string
		qID  string
		seed int64
	}
	prepared := make([]tenantTables, 0, len(tenants))
	for i, tk := range tenants {
		seed := cfg.Seed + int64(i)
		sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: seed, N: cfg.Rows})
		if err != nil {
			return nil, fmt.Errorf("loadgen: generate scenario for %s: %w", tk.Tenant, err)
		}
		pID, err := uploadTable(ctx, client, cfg.Addr, tk.Key, "loadgen-P", sc.P)
		if err != nil {
			return nil, fmt.Errorf("loadgen: upload P for %s: %w", tk.Tenant, err)
		}
		qID, err := uploadTable(ctx, client, cfg.Addr, tk.Key, "loadgen-Q", sc.Q)
		if err != nil {
			return nil, fmt.Errorf("loadgen: upload Q for %s: %w", tk.Tenant, err)
		}
		prepared = append(prepared, tenantTables{key: tk.Key, pID: pID, qID: qID, seed: seed})
	}

	col := &collector{}
	var wg sync.WaitGroup
	for ti := range prepared {
		tt := prepared[ti]
		for w := 0; w < cfg.WorkersPerTenant; w++ {
			wg.Add(1)
			go func(workerSeed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(workerSeed))
				for deadline.Err() == nil {
					spec := mixedSpec(rng, tt.pID, tt.qID, cfg.AttackFraction)
					driveJob(deadline, client, cfg, tt.key, spec, col)
				}
			}(tt.seed*1000 + int64(w))
		}
	}
	wg.Wait()

	col.mu.Lock()
	defer col.mu.Unlock()
	rep := &Report{
		Tenants:   len(prepared),
		Submitted: col.submitted,
		Completed: col.completed,
		Failed:    col.failed,
		Shed:      col.shed,
		Elapsed:   time.Since(start),
	}
	if attempts := col.submitted + col.shed; attempts > 0 {
		rep.ShedRate = float64(col.shed) / float64(attempts)
	}
	rep.P50 = percentile(col.latencies, 0.50)
	rep.P95 = percentile(col.latencies, 0.95)
	rep.P99 = percentile(col.latencies, 0.99)
	return rep, nil
}

// mixedSpec picks the next job: a cheap attack or a heavier fred-sweep.
// Parameters are jittered so the server's result cache sees a realistic
// mix of hits and misses rather than one endlessly-cached spec.
func mixedSpec(rng *rand.Rand, pID, qID string, attackFraction float64) service.Spec {
	if rng.Float64() < attackFraction {
		return service.Spec{
			Type: service.JobAttack, Table: pID, Aux: qID,
			K:           2 + rng.Intn(4),
			SensitiveLo: 40000, SensitiveHi: 160000,
		}
	}
	return service.Spec{
		Type: service.JobFREDSweep, Table: pID, Aux: qID,
		MinK: 2, MaxK: 4 + rng.Intn(5),
		SensitiveLo: 40000, SensitiveHi: 160000,
	}
}

// driveJob submits one job and follows it to a terminal state, recording
// the submit-to-terminal latency. A 429 — admission shed or rate limit —
// counts as shed and honors the server's Retry-After before the worker
// offers again.
func driveJob(ctx context.Context, client *http.Client, cfg Config, key string, spec service.Spec, col *collector) {
	submitAt := time.Now()
	st, code, retryAfter, err := submitJob(ctx, client, cfg.Addr, key, spec)
	switch {
	case err != nil:
		if ctx.Err() == nil {
			col.mu.Lock()
			col.failed++
			col.mu.Unlock()
		}
		return
	case code == http.StatusTooManyRequests:
		col.mu.Lock()
		col.shed++
		col.mu.Unlock()
		wait := retryAfter
		if wait <= 0 {
			wait = time.Second
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
		}
		return
	case code != http.StatusAccepted:
		col.mu.Lock()
		col.failed++
		col.mu.Unlock()
		return
	}
	col.mu.Lock()
	col.submitted++
	col.mu.Unlock()

	// Poll to terminal. The deadline context stops new submissions, but a
	// job already admitted is followed on the background context so its
	// latency is observed — matching how the server drains real clients.
	for {
		st2, err := pollJob(context.Background(), client, cfg.Addr, key, st.ID)
		if err != nil {
			col.mu.Lock()
			col.failed++
			col.mu.Unlock()
			return
		}
		if st2.State.Terminal() {
			col.mu.Lock()
			if st2.State == service.StateDone {
				col.completed++
				col.latencies = append(col.latencies, time.Since(submitAt))
			} else {
				col.failed++
			}
			col.mu.Unlock()
			return
		}
		time.Sleep(cfg.PollInterval)
	}
}

// --- HTTP plumbing ----------------------------------------------------------

func authed(req *http.Request, key string) {
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
}

func uploadTable(ctx context.Context, client *http.Client, addr, key, name string, t *dataset.Table) (string, error) {
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, t); err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/tables?name="+name, &buf)
	if err != nil {
		return "", err
	}
	authed(req, key)
	req.Header.Set("Content-Type", "text/csv")
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", fmt.Errorf("upload %s: status %d: %s", name, resp.StatusCode, body)
	}
	var info service.TableInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return "", err
	}
	return info.ID, nil
}

func submitJob(ctx context.Context, client *http.Client, addr, key string, spec service.Spec) (st service.Status, code int, retryAfter time.Duration, err error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return st, 0, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return st, 0, 0, err
	}
	authed(req, key)
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return st, 0, 0, err
	}
	defer resp.Body.Close()
	if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil {
		retryAfter = time.Duration(secs) * time.Second
	}
	if resp.StatusCode == http.StatusAccepted {
		err = json.NewDecoder(resp.Body).Decode(&st)
	} else {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512)) //nolint:errcheck // draining for keep-alive
	}
	return st, resp.StatusCode, retryAfter, err
}

func pollJob(ctx context.Context, client *http.Client, addr, key, id string) (service.Status, error) {
	var st service.Status
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/jobs/"+id, nil)
	if err != nil {
		return st, err
	}
	authed(req, key)
	resp, err := client.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return st, fmt.Errorf("poll %s: status %d: %s", id, resp.StatusCode, body)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// percentile returns the q-quantile of latencies (nearest-rank); zero when
// nothing completed.
func percentile(latencies []time.Duration, q float64) time.Duration {
	if len(latencies) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(latencies))
	copy(sorted, latencies)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i] < sorted[k] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
