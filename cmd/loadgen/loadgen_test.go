package main

import (
	"context"
	"log/slog"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/service"
)

// TestLoadgenSmoke runs the whole harness against an in-process server: an
// authenticated two-tenant deployment with a deliberately tiny admission
// envelope, so the run exercises both the happy path (jobs complete, with
// latencies) and the shed path (429 + Retry-After honored). The duration is
// short by default; CI's ops job stretches it via LOADGEN_SMOKE_DURATION.
func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load generation loop")
	}
	duration := 3 * time.Second
	if v := os.Getenv("LOADGEN_SMOKE_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("bad LOADGEN_SMOKE_DURATION %q: %v", v, err)
		}
		duration = d
	}

	store := service.NewStore()
	if err := store.Open(); err != nil {
		t.Fatal(err)
	}
	engine := service.NewEngine(store, service.Options{
		Workers: 1, SweepWorkers: 1,
		QueueDepth: 2, MaxPendingPerTenant: 1,
		CacheSize: -1, // every submission runs, keeping the queue under pressure
	})
	engine.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		engine.Shutdown(ctx)
	})

	auth, err := httpapi.NewAuth(map[string]string{
		"acme-key-123": "acme",
		"zeta-key-456": "zeta",
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(httpapi.New(store, engine, slog.New(slog.DiscardHandler), httpapi.WithAuth(auth)))
	t.Cleanup(srv.Close)

	rep, err := run(context.Background(), Config{
		Addr: srv.URL,
		Tenants: []TenantKey{
			{Tenant: "acme", Key: "acme-key-123"},
			{Tenant: "zeta", Key: "zeta-key-456"},
		},
		WorkersPerTenant: 4,
		Duration:         duration,
		Rows:             120,
		Seed:             7,
		AttackFraction:   0.4,
		PollInterval:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("loadgen report: %s", rep)

	if rep.Tenants != 2 {
		t.Fatalf("drove %d tenants, want 2", rep.Tenants)
	}
	if rep.Completed == 0 {
		t.Fatal("no jobs completed — the harness never exercised the happy path")
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("implausible latency percentiles: p50=%v p99=%v", rep.P50, rep.P99)
	}
	// 8 workers offering into a 1-worker, depth-2 queue with per-tenant
	// bound 1 and no result cache must shed: if it never does, admission
	// control is not reaching the submit path.
	if rep.Shed == 0 {
		t.Fatal("no submissions shed — admission control never engaged under pressure")
	}
	if rep.ShedRate <= 0 || rep.ShedRate >= 1 {
		t.Fatalf("shed rate %v outside (0,1)", rep.ShedRate)
	}
}
