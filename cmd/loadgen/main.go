// Command loadgen drives a running served instance with concurrent tenant
// traffic and reports what the service did under pressure: completion
// latency percentiles (p50/p95/p99) and the shed rate — the fraction of
// submissions the server refused with 429 under admission control or key
// rate limits.
//
//	loadgen -addr http://127.0.0.1:8080 -duration 30s -workers 4
//	loadgen -addr http://127.0.0.1:8080 -keys-file /etc/served/keys -attack-frac 0.5
//
// With -keys-file (same format served reads: `tenant key [...]` per line)
// every tenant in the file is driven concurrently with its own key and its
// own generated tables; without it the run targets an open single-tenant
// server. Each worker loops: submit a job (fred-sweep or attack, mixed by
// -attack-frac), poll it to a terminal state, repeat. 429 responses count
// as shed and honor the server's Retry-After before the worker offers
// again — the client-side half of the admission-control contract.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

func main() {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8080", "server base URL")
		keysFile   = flag.String("keys-file", "", "API key file naming the tenants to drive (empty = open server, one tenant)")
		workers    = flag.Int("workers", 2, "concurrent submit loops per tenant")
		duration   = flag.Duration("duration", 10*time.Second, "how long to offer load")
		rows       = flag.Int("rows", 30, "rows per generated tenant table")
		seed       = flag.Int64("seed", 1, "base RNG seed (tables and job mix)")
		attackFrac = flag.Float64("attack-frac", 0.3, "fraction of submissions that are attack jobs (rest are sweeps)")
		jsonOut    = flag.Bool("json", false, "emit the report as JSON instead of one summary line")
	)
	flag.Parse()

	cfg := Config{
		Addr:             strings.TrimRight(*addr, "/"),
		WorkersPerTenant: *workers,
		Duration:         *duration,
		Rows:             *rows,
		Seed:             *seed,
		AttackFraction:   *attackFrac,
	}
	if *keysFile != "" {
		tenants, err := loadTenantKeys(*keysFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Tenants = tenants
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep) //nolint:errcheck // stdout
		return
	}
	fmt.Println(rep)
}

// loadTenantKeys reads the served keys-file format, keeping one key per
// tenant (the first listed) — loadgen drives tenants, not individual keys.
func loadTenantKeys(path string) ([]TenantKey, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: open keys file: %w", err)
	}
	defer f.Close()
	seen := make(map[string]bool)
	var tenants []TenantKey
	sc := bufio.NewScanner(f)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("loadgen: keys file line %d: want `tenant key [...]`", lineNo)
		}
		if seen[fields[0]] {
			continue
		}
		seen[fields[0]] = true
		tenants = append(tenants, TenantKey{Tenant: fields[0], Key: fields[1]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: read keys file: %w", err)
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("loadgen: keys file %s names no tenants", path)
	}
	return tenants, nil
}
